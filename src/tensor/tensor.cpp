#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "support/thread_pool.h"

namespace irgnn::tensor {

using detail::Node;

namespace {

std::atomic<int> g_kernel_parallelism{0};  // <= 0: all global-pool workers

/// Rows per parallel work item: large enough that scheduling noise is
/// amortized, small enough that row counts in the tens still spread.
constexpr std::int64_t kRowBlock = 16;
/// Below this many scalar multiply-adds a kernel runs serially.
constexpr std::int64_t kParallelFlops = 16 * 1024;

/// Runs fn(row_begin, row_end) over blocks of rows, in parallel when `flops`
/// justifies it. Blocks are disjoint, so any per-row-owned output keeps the
/// bit-identical-across-thread-counts contract.
void for_row_blocks(std::int64_t rows, std::int64_t flops,
                    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  if (flops < kParallelFlops || rows <= kRowBlock) {
    fn(0, rows);
    return;
  }
  std::int64_t blocks = (rows + kRowBlock - 1) / kRowBlock;
  support::ThreadPool::global().parallel_for(
      0, blocks, g_kernel_parallelism.load(), [&](std::int64_t b) {
        fn(b * kRowBlock, std::min(rows, (b + 1) * kRowBlock));
      });
}

std::shared_ptr<Node> make_node(Shape shape) {
  auto node = std::make_shared<Node>();
  node->shape = shape;
  node->data.assign(static_cast<std::size_t>(shape.numel()), 0.0f);
  return node;
}

/// Output node wired to parents; requires_grad propagates.
std::shared_ptr<Node> make_op_node(
    Shape shape, std::vector<std::shared_ptr<Node>> parents,
    std::function<void(Node&)> backward) {
  auto node = make_node(shape);
  for (const auto& p : parents) node->requires_grad |= p->requires_grad;
  if (node->requires_grad) {
    node->parents = std::move(parents);
    node->backward_fn = std::move(backward);
  }
  return node;
}

}  // namespace

void set_kernel_parallelism(int max_threads) {
  g_kernel_parallelism.store(max_threads > 0 ? max_threads : 0);
}

int kernel_parallelism() { return g_kernel_parallelism.load(); }

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  auto node = make_node(shape);
  node->requires_grad = requires_grad;
  return Tensor(node);
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  auto node = make_node(shape);
  std::fill(node->data.begin(), node->data.end(), value);
  node->requires_grad = requires_grad;
  return Tensor(node);
}

Tensor Tensor::from_data(Shape shape, std::vector<float> values,
                         bool requires_grad) {
  assert(static_cast<int>(values.size()) == shape.numel());
  auto node = make_node(shape);
  node->data = std::move(values);
  node->requires_grad = requires_grad;
  return Tensor(node);
}

Tensor Tensor::xavier(Shape shape, Rng& rng) {
  auto node = make_node(shape);
  float limit = std::sqrt(6.0f / static_cast<float>(shape.rows + shape.cols));
  for (float& v : node->data)
    v = static_cast<float>(rng.uniform(-limit, limit));
  node->requires_grad = true;
  return Tensor(node);
}

Tensor Tensor::kaiming(Shape shape, Rng& rng) {
  auto node = make_node(shape);
  float stddev = std::sqrt(2.0f / static_cast<float>(shape.rows));
  for (float& v : node->data)
    v = static_cast<float>(rng.normal(0.0, stddev));
  node->requires_grad = true;
  return Tensor(node);
}

void Tensor::backward() {
  if (!node_->requires_grad)
    throw std::logic_error("backward() on a non-grad tensor");
  // Topological order via iterative DFS. Index into the stack rather than
  // holding a reference: pushing may reallocate the vector.
  std::vector<Node*> order;
  std::unordered_set<Node*> visited;
  std::vector<std::pair<Node*, std::size_t>> stack{{node_.get(), 0}};
  visited.insert(node_.get());
  while (!stack.empty()) {
    std::size_t top = stack.size() - 1;
    Node* node = stack[top].first;
    if (stack[top].second < node->parents.size()) {
      Node* child = node->parents[stack[top].second++].get();
      if (child->requires_grad && visited.insert(child).second)
        stack.push_back({child, 0});
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  node_->ensure_grad();
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
  node_->grad[0] = 1.0f;  // seed (scalar roots)
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) {
      for (auto& p : (*it)->parents)
        if (p->requires_grad) p->ensure_grad();
      (*it)->backward_fn(**it);
    }
  }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

namespace {

/// Packs src[rows, cols] transposed into dst[cols, rows].
void transpose_into(const float* src, int rows, int cols,
                    std::vector<float>& dst) {
  dst.resize(static_cast<std::size_t>(rows) * cols);
  constexpr int kTile = 32;
  for (int i0 = 0; i0 < rows; i0 += kTile)
    for (int j0 = 0; j0 < cols; j0 += kTile)
      for (int i = i0; i < std::min(rows, i0 + kTile); ++i)
        for (int j = j0; j < std::min(cols, j0 + kTile); ++j)
          dst[static_cast<std::size_t>(j) * rows + i] =
              src[static_cast<std::size_t>(i) * cols + j];
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const int m = a.rows();
  const int k = a.cols();
  const int n = b.cols();
  const std::int64_t flops =
      static_cast<std::int64_t>(m) * k * n;
  auto node = make_op_node(
      {m, n}, {a.node(), b.node()}, [m, k, n, flops](Node& out) {
        Node& A = *out.parents[0];
        Node& B = *out.parents[1];
        const float* g = out.grad.data();
        if (A.requires_grad) {
          // dA[i,l] = sum_j g[i,j] * B[l,j] — B rows are contiguous in j, so
          // the inner loop is a dot product without any packing.
          float* ga = A.grad.data();
          const float* pb = B.data.data();
          for_row_blocks(m, flops, [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
              const float* grow = g + i * n;
              float* garow = ga + i * k;
              for (int l = 0; l < k; ++l) {
                const float* brow = pb + static_cast<std::int64_t>(l) * n;
                float acc = 0.0f;
                for (int j = 0; j < n; ++j) acc += grow[j] * brow[j];
                garow[l] += acc;
              }
            }
          });
        }
        if (B.requires_grad) {
          // dB[l,:] += A[i,l] * g[i,:], i ascending. Pack A transposed so
          // each dB row reads a contiguous At row; parallel over dB rows.
          float* gb = B.grad.data();
          std::vector<float> at;  // [k, m]
          transpose_into(A.data.data(), m, k, at);
          for_row_blocks(k, flops, [&](std::int64_t l0, std::int64_t l1) {
            for (std::int64_t l = l0; l < l1; ++l) {
              const float* atrow = at.data() + l * m;
              float* gbrow = gb + l * n;
              for (int i = 0; i < m; ++i) {
                float ail = atrow[i];
                if (ail == 0.0f) continue;
                const float* grow = g + static_cast<std::int64_t>(i) * n;
                for (int j = 0; j < n; ++j) gbrow[j] += ail * grow[j];
              }
            }
          });
        }
      });
  // Forward: pack B transposed once, then every C entry is a contiguous dot
  // product; row blocks parallelize and reuse the Bt panel from cache.
  const float* pa = a.data();
  float* pc = node->data.data();
  std::vector<float> bt;  // [n, k]
  transpose_into(b.data(), k, n, bt);
  for_row_blocks(m, flops, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* arow = pa + i * k;
      float* crow = pc + i * n;
      for (int j = 0; j < n; ++j) {
        const float* btrow = bt.data() + static_cast<std::int64_t>(j) * k;
        float acc = 0.0f;
        for (int l = 0; l < k; ++l) acc += arow[l] * btrow[l];
        crow[j] = acc;
      }
    }
  });
  return Tensor(node);
}

namespace {

Tensor elementwise(const Tensor& a, const Tensor& b, float sign_b,
                   bool product) {
  assert(a.shape() == b.shape());
  auto node = make_op_node(
      a.shape(), {a.node(), b.node()},
      [sign_b, product](Node& out) {
        Node& A = *out.parents[0];
        Node& B = *out.parents[1];
        const std::size_t n = out.data.size();
        for (std::size_t i = 0; i < n; ++i) {
          float g = out.grad[i];
          if (product) {
            if (A.requires_grad) A.grad[i] += g * B.data[i];
            if (B.requires_grad) B.grad[i] += g * A.data[i];
          } else {
            if (A.requires_grad) A.grad[i] += g;
            if (B.requires_grad) B.grad[i] += g * sign_b;
          }
        }
      });
  const std::size_t n = node->data.size();
  for (std::size_t i = 0; i < n; ++i)
    node->data[i] = product ? a.data()[i] * b.data()[i]
                            : a.data()[i] + sign_b * b.data()[i];
  return Tensor(node);
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, 1.0f, false);
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, -1.0f, false);
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, 0.0f, true);
}

Tensor add_bias(const Tensor& a, const Tensor& b) {
  return add_bias_act(a, b, Act::None);
}

namespace {

inline float apply_act(float x, Act act) {
  switch (act) {
    case Act::Relu:
      return x > 0.0f ? x : 0.0f;
    case Act::Tanh:
      return std::tanh(x);
    case Act::Sigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case Act::None:
      break;
  }
  return x;
}

/// d act / d pre-activation, expressed through the activation's own output y
/// (all three activations allow that, which spares caching the input).
inline float act_derivative(float y, Act act) {
  switch (act) {
    case Act::Relu:
      return y > 0.0f ? 1.0f : 0.0f;
    case Act::Tanh:
      return 1.0f - y * y;
    case Act::Sigmoid:
      return y * (1.0f - y);
    case Act::None:
      break;
  }
  return 1.0f;
}

}  // namespace

Tensor add_bias_act(const Tensor& a, const Tensor& b, Act act) {
  assert(b.rows() == 1 && b.cols() == a.cols());
  const int m = a.rows();
  const int n = a.cols();
  const std::int64_t work = static_cast<std::int64_t>(m) * n;
  auto node =
      make_op_node({m, n}, {a.node(), b.node()}, [m, n, act, work](Node& out) {
        Node& A = *out.parents[0];
        Node& B = *out.parents[1];
        // Partition by *columns*: each column owns its bias-gradient slot, so
        // the row sum stays an ordered (i ascending) deterministic reduction
        // inside one work item.
        for_row_blocks(n, work, [&](std::int64_t j0, std::int64_t j1) {
          for (int i = 0; i < m; ++i) {
            const float* grow = out.grad.data() + static_cast<std::int64_t>(i) * n;
            const float* yrow = out.data.data() + static_cast<std::int64_t>(i) * n;
            for (std::int64_t j = j0; j < j1; ++j) {
              float g = grow[j] * act_derivative(yrow[j], act);
              if (A.requires_grad) A.grad[i * n + j] += g;
              if (B.requires_grad) B.grad[j] += g;
            }
          }
        });
      });
  const float* pa = a.data();
  const float* pb = b.data();
  float* py = node->data.data();
  for_row_blocks(m, work, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i)
      for (int j = 0; j < n; ++j)
        py[i * n + j] = apply_act(pa[i * n + j] + pb[j], act);
  });
  return Tensor(node);
}

Tensor scale(const Tensor& a, float s) {
  auto node = make_op_node(a.shape(), {a.node()}, [s](Node& out) {
    Node& A = *out.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      A.grad[i] += s * out.grad[i];
  });
  for (std::size_t i = 0; i < node->data.size(); ++i)
    node->data[i] = s * a.data()[i];
  return Tensor(node);
}

Tensor relu(const Tensor& a) {
  auto node = make_op_node(a.shape(), {a.node()}, [](Node& out) {
    Node& A = *out.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      if (out.data[i] > 0.0f) A.grad[i] += out.grad[i];
  });
  for (std::size_t i = 0; i < node->data.size(); ++i)
    node->data[i] = std::max(0.0f, a.data()[i]);
  return Tensor(node);
}

Tensor tanh_t(const Tensor& a) {
  auto node = make_op_node(a.shape(), {a.node()}, [](Node& out) {
    Node& A = *out.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      A.grad[i] += (1.0f - out.data[i] * out.data[i]) * out.grad[i];
  });
  for (std::size_t i = 0; i < node->data.size(); ++i)
    node->data[i] = std::tanh(a.data()[i]);
  return Tensor(node);
}

Tensor sigmoid(const Tensor& a) {
  auto node = make_op_node(a.shape(), {a.node()}, [](Node& out) {
    Node& A = *out.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      A.grad[i] += out.data[i] * (1.0f - out.data[i]) * out.grad[i];
  });
  for (std::size_t i = 0; i < node->data.size(); ++i)
    node->data[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
  return Tensor(node);
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  assert(gamma.rows() == 1 && gamma.cols() == x.cols());
  assert(beta.rows() == 1 && beta.cols() == x.cols());
  const int m = x.rows();
  const int n = x.cols();
  // Cache per-row mean and inverse stddev for the backward pass.
  auto stats = std::make_shared<std::vector<float>>(2 * m);
  auto node = make_op_node(
      {m, n}, {x.node(), gamma.node(), beta.node()},
      [m, n, stats, eps](Node& out) {
        Node& X = *out.parents[0];
        Node& G = *out.parents[1];
        Node& B = *out.parents[2];
        for (int i = 0; i < m; ++i) {
          float mean = (*stats)[2 * i];
          float inv_std = (*stats)[2 * i + 1];
          // xhat_j = (x_j - mean) * inv_std; y_j = gamma_j * xhat_j + beta_j
          float sum_dy_g = 0.0f;
          float sum_dy_g_xhat = 0.0f;
          for (int j = 0; j < n; ++j) {
            float xhat = (X.data[i * n + j] - mean) * inv_std;
            float dy = out.grad[i * n + j];
            float dy_g = dy * G.data[j];
            sum_dy_g += dy_g;
            sum_dy_g_xhat += dy_g * xhat;
            if (G.requires_grad) G.grad[j] += dy * xhat;
            if (B.requires_grad) B.grad[j] += dy;
          }
          if (X.requires_grad) {
            for (int j = 0; j < n; ++j) {
              float xhat = (X.data[i * n + j] - mean) * inv_std;
              X.grad[i * n + j] +=
                  inv_std *
                  (out.grad[i * n + j] * G.data[j] -
                   (sum_dy_g + xhat * sum_dy_g_xhat) / static_cast<float>(n));
            }
          }
        }
      });
  // Rows normalize independently (stats slots are per-row too).
  for_row_blocks(m, static_cast<std::int64_t>(m) * n * 3,
                 [&](std::int64_t i0, std::int64_t i1) {
                   for (std::int64_t i = i0; i < i1; ++i) {
                     float mean = 0.0f;
                     for (int j = 0; j < n; ++j) mean += x.data()[i * n + j];
                     mean /= static_cast<float>(n);
                     float var = 0.0f;
                     for (int j = 0; j < n; ++j) {
                       float d = x.data()[i * n + j] - mean;
                       var += d * d;
                     }
                     var /= static_cast<float>(n);
                     float inv_std = 1.0f / std::sqrt(var + eps);
                     (*stats)[2 * i] = mean;
                     (*stats)[2 * i + 1] = inv_std;
                     for (int j = 0; j < n; ++j)
                       node->data[i * n + j] =
                           gamma.data()[j] * (x.data()[i * n + j] - mean) *
                               inv_std +
                           beta.data()[j];
                   }
                 });
  return Tensor(node);
}

Tensor embedding(const Tensor& table, const std::vector<int>& indices) {
  const int d = table.cols();
  const int m = static_cast<int>(indices.size());
  auto idx = std::make_shared<std::vector<int>>(indices);
  auto node = make_op_node({m, d}, {table.node()}, [d, m, idx](Node& out) {
    Node& T = *out.parents[0];
    if (!T.requires_grad) return;
    for (int i = 0; i < m; ++i) {
      float* trow = T.grad.data() + (*idx)[i] * d;
      const float* grow = out.grad.data() + i * d;
      for (int j = 0; j < d; ++j) trow[j] += grow[j];
    }
  });
  for (int i = 0; i < m; ++i) {
    assert(indices[i] >= 0 && indices[i] < table.rows());
    std::copy(table.data() + indices[i] * d, table.data() + (indices[i] + 1) * d,
              node->data.data() + i * d);
  }
  return Tensor(node);
}

Tensor gather_rows(const Tensor& x, const std::vector<int>& index) {
  return embedding(x, index);  // identical semantics
}

Tensor index_add_rows(const Tensor& x, const std::vector<int>& dst,
                      const std::vector<float>& coeff, int num_rows) {
  assert(dst.size() == static_cast<std::size_t>(x.rows()));
  assert(coeff.size() == dst.size());
  const int d = x.cols();
  const int e = x.rows();
  auto dst_copy = std::make_shared<std::vector<int>>(dst);
  auto coeff_copy = std::make_shared<std::vector<float>>(coeff);
  auto node = make_op_node(
      {num_rows, d}, {x.node()}, [d, e, dst_copy, coeff_copy](Node& out) {
        Node& X = *out.parents[0];
        if (!X.requires_grad) return;
        // Each edge owns its x-gradient row; destination rows are only read.
        for_row_blocks(e, static_cast<std::int64_t>(e) * d,
                       [&](std::int64_t i0, std::int64_t i1) {
                         for (std::int64_t i = i0; i < i1; ++i) {
                           const float* grow =
                               out.grad.data() + (*dst_copy)[i] * d;
                           float* xrow = X.grad.data() + i * d;
                           float c = (*coeff_copy)[i];
                           for (int j = 0; j < d; ++j) xrow[j] += c * grow[j];
                         }
                       });
      });
  for (int i = 0; i < e; ++i) {
    assert(dst[i] >= 0 && dst[i] < num_rows);
    float* orow = node->data.data() + dst[i] * d;
    const float* xrow = x.data() + i * d;
    for (int j = 0; j < d; ++j) orow[j] += coeff[i] * xrow[j];
  }
  return Tensor(node);
}

Tensor segment_mean(const Tensor& x, const std::vector<int>& segment,
                    int num_segments) {
  assert(segment.size() == static_cast<std::size_t>(x.rows()));
  const int d = x.cols();
  const int n = x.rows();
  auto counts = std::make_shared<std::vector<float>>(num_segments, 0.0f);
  for (int i = 0; i < n; ++i) (*counts)[segment[i]] += 1.0f;
  auto seg = std::make_shared<std::vector<int>>(segment);
  auto node = make_op_node(
      {num_segments, d}, {x.node()}, [d, n, seg, counts](Node& out) {
        Node& X = *out.parents[0];
        if (!X.requires_grad) return;
        for (int i = 0; i < n; ++i) {
          float inv = 1.0f / (*counts)[(*seg)[i]];
          const float* grow = out.grad.data() + (*seg)[i] * d;
          float* xrow = X.grad.data() + i * d;
          for (int j = 0; j < d; ++j) xrow[j] += inv * grow[j];
        }
      });
  for (int i = 0; i < n; ++i) {
    float inv = 1.0f / (*counts)[segment[i]];
    float* orow = node->data.data() + segment[i] * d;
    const float* xrow = x.data() + i * d;
    for (int j = 0; j < d; ++j) orow[j] += inv * xrow[j];
  }
  return Tensor(node);
}

Tensor log_softmax(const Tensor& x) {
  const int m = x.rows();
  const int n = x.cols();
  auto node = make_op_node({m, n}, {x.node()}, [m, n](Node& out) {
    Node& X = *out.parents[0];
    if (!X.requires_grad) return;
    for (int i = 0; i < m; ++i) {
      float sum_g = 0.0f;
      for (int j = 0; j < n; ++j) sum_g += out.grad[i * n + j];
      for (int j = 0; j < n; ++j)
        X.grad[i * n + j] +=
            out.grad[i * n + j] - std::exp(out.data[i * n + j]) * sum_g;
    }
  });
  for (int i = 0; i < m; ++i) {
    float mx = x.data()[i * n];
    for (int j = 1; j < n; ++j) mx = std::max(mx, x.data()[i * n + j]);
    float sum = 0.0f;
    for (int j = 0; j < n; ++j) sum += std::exp(x.data()[i * n + j] - mx);
    float lse = mx + std::log(sum);
    for (int j = 0; j < n; ++j)
      node->data[i * n + j] = x.data()[i * n + j] - lse;
  }
  return Tensor(node);
}

Tensor nll_loss(const Tensor& log_probs, const std::vector<int>& targets) {
  assert(targets.size() == static_cast<std::size_t>(log_probs.rows()));
  const int m = log_probs.rows();
  const int n = log_probs.cols();
  auto tgt = std::make_shared<std::vector<int>>(targets);
  auto node = make_op_node({1, 1}, {log_probs.node()}, [m, n, tgt](Node& out) {
    Node& L = *out.parents[0];
    if (!L.requires_grad) return;
    float g = out.grad[0] / static_cast<float>(m);
    for (int i = 0; i < m; ++i) L.grad[i * n + (*tgt)[i]] -= g;
  });
  float loss = 0.0f;
  for (int i = 0; i < m; ++i) {
    assert(targets[i] >= 0 && targets[i] < n);
    loss -= log_probs.data()[i * n + targets[i]];
  }
  node->data[0] = loss / static_cast<float>(m);
  return Tensor(node);
}

Tensor dropout(const Tensor& x, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return x;
  auto mask = std::make_shared<std::vector<float>>(x.numel());
  float keep = 1.0f - p;
  for (float& v : *mask) v = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
  auto node = make_op_node(x.shape(), {x.node()}, [mask](Node& out) {
    Node& X = *out.parents[0];
    if (!X.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      X.grad[i] += (*mask)[i] * out.grad[i];
  });
  for (int i = 0; i < x.numel(); ++i)
    node->data[i] = (*mask)[i] * x.data()[i];
  return Tensor(node);
}

std::vector<int> argmax_rows(const Tensor& x) {
  std::vector<int> out(x.rows());
  for (int i = 0; i < x.rows(); ++i) {
    int best = 0;
    for (int j = 1; j < x.cols(); ++j)
      if (x.at(i, j) > x.at(i, best)) best = j;
    out[i] = best;
  }
  return out;
}

}  // namespace irgnn::tensor
