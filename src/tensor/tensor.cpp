#include "tensor/tensor.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "support/simd.h"
#include "support/thread_pool.h"
#include "tensor/gemm.h"

namespace irgnn::tensor {

using detail::Node;
using simd::v8f;

namespace {

std::atomic<int> g_kernel_parallelism{0};  // <= 0: all global-pool workers

/// Per-thread tape switch; see InferenceGuard. Thread-local because a pool
/// worker running an inference shard must not stop a concurrent training
/// shard on another worker from recording.
thread_local bool t_inference_mode = false;

/// Monotone epoch for backward() traversals; see Node::visit_mark.
std::atomic<std::uint64_t> g_visit_epoch{0};

/// Rows per parallel work item: large enough that scheduling noise is
/// amortized, small enough that row counts in the tens still spread.
constexpr std::int64_t kRowBlock = 16;
/// Below this many scalar multiply-adds a kernel runs serially.
constexpr std::int64_t kParallelFlops = 16 * 1024;

/// Runs fn(row_begin, row_end) over blocks of rows, in parallel when `flops`
/// justifies it. Blocks are disjoint, so any per-row-owned output keeps the
/// bit-identical-across-thread-counts contract. Templated (not
/// std::function) so the serial path inlines and the parallel path passes a
/// borrowed FunctionRef — no allocation either way.
template <typename Fn>
void for_row_blocks(std::int64_t rows, std::int64_t flops, const Fn& fn) {
  if (flops < kParallelFlops || rows <= kRowBlock) {
    fn(static_cast<std::int64_t>(0), rows);
    return;
  }
  std::int64_t blocks = (rows + kRowBlock - 1) / kRowBlock;
  support::ThreadPool::global().parallel_for(
      0, blocks, g_kernel_parallelism.load(), [&](std::int64_t b) {
        fn(b * kRowBlock, std::min(rows, (b + 1) * kRowBlock));
      });
}

std::shared_ptr<Node> make_node(Shape shape) {
  auto node = support::make_pooled<Node>();
  node->shape = shape;
  node->data.assign(static_cast<std::size_t>(shape.numel()), 0.0f);
  return node;
}

/// Output node wired to parents; requires_grad propagates. Under an
/// InferenceGuard the node stays tape-free: no parents, no closure, no grad
/// propagation — parents' buffers can recycle the moment their handles die.
std::shared_ptr<Node> make_op_node(
    Shape shape, std::initializer_list<std::shared_ptr<Node>> parents,
    support::InlineFunction<void(Node&), 64> backward) {
  auto node = make_node(shape);
  if (t_inference_mode) return node;
  for (const auto& p : parents) node->requires_grad |= p->requires_grad;
  if (node->requires_grad) {
    // Hard check, not an assert: overflowing the fixed parent array would
    // corrupt the adjacent inline closure storage in NDEBUG builds.
    if (parents.size() > Node::kMaxParents)
      throw std::logic_error("op exceeds Node::kMaxParents inputs");
    int count = 0;
    for (const auto& p : parents) node->parents[count++] = p;
    node->num_parents = count;
    node->backward_fn = std::move(backward);
  }
  return node;
}

}  // namespace

void set_kernel_parallelism(int max_threads) {
  g_kernel_parallelism.store(max_threads > 0 ? max_threads : 0);
}

int kernel_parallelism() { return g_kernel_parallelism.load(); }

InferenceGuard::InferenceGuard() : prev_(t_inference_mode) {
  t_inference_mode = true;
}

InferenceGuard::~InferenceGuard() { t_inference_mode = prev_; }

bool inference_mode() { return t_inference_mode; }

Tensor Tensor::zeros(Shape shape, bool requires_grad) {
  auto node = make_node(shape);
  node->requires_grad = requires_grad;
  return Tensor(node);
}

Tensor Tensor::full(Shape shape, float value, bool requires_grad) {
  auto node = make_node(shape);
  std::fill(node->data.begin(), node->data.end(), value);
  node->requires_grad = requires_grad;
  return Tensor(node);
}

Tensor Tensor::from_data(Shape shape, std::vector<float> values,
                         bool requires_grad) {
  assert(static_cast<std::int64_t>(values.size()) == shape.numel());
  // Bypass make_node's zero fill: assign into the empty pooled buffer so
  // the data is written once (replica cloning calls this per shard).
  auto node = support::make_pooled<Node>();
  node->shape = shape;
  node->data.assign(values.begin(), values.end());
  node->requires_grad = requires_grad;
  return Tensor(node);
}

Tensor Tensor::xavier(Shape shape, Rng& rng) {
  auto node = make_node(shape);
  float limit = std::sqrt(6.0f / static_cast<float>(shape.rows + shape.cols));
  for (float& v : node->data)
    v = static_cast<float>(rng.uniform(-limit, limit));
  node->requires_grad = true;
  return Tensor(node);
}

Tensor Tensor::kaiming(Shape shape, Rng& rng) {
  auto node = make_node(shape);
  float stddev = std::sqrt(2.0f / static_cast<float>(shape.rows));
  for (float& v : node->data)
    v = static_cast<float>(rng.normal(0.0, stddev));
  node->requires_grad = true;
  return Tensor(node);
}

void Tensor::backward() {
  if (!node_->requires_grad)
    throw std::logic_error("backward() on a non-grad tensor");
  // Topological order via iterative DFS. Visited state is an epoch stamp on
  // the node (no per-call hash set) and the work vectors recycle through the
  // arena, so the traversal itself is allocation-free once warm. Index into
  // the stack rather than holding a reference: pushing may reallocate.
  const std::uint64_t epoch =
      g_visit_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  support::PoolVector<Node*> order;
  support::PoolVector<std::pair<Node*, int>> stack;
  stack.push_back({node_.get(), 0});
  node_->visit_mark = epoch;
  while (!stack.empty()) {
    std::size_t top = stack.size() - 1;
    Node* node = stack[top].first;
    if (stack[top].second < node->num_parents) {
      Node* child = node->parents[stack[top].second++].get();
      if (child->requires_grad && child->visit_mark != epoch) {
        child->visit_mark = epoch;
        stack.push_back({child, 0});
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
  node_->ensure_grad();
  std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
  node_->grad[0] = 1.0f;  // seed (scalar roots)
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if ((*it)->backward_fn) {
      for (int p = 0; p < (*it)->num_parents; ++p)
        if ((*it)->parents[p]->requires_grad) (*it)->parents[p]->ensure_grad();
      (*it)->backward_fn(**it);
    }
  }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

namespace {

/// Packs src[rows, cols] transposed into dst[cols, rows]. dst recycles
/// through the arena (callers hold it only for the kernel's duration).
void transpose_into(const float* src, std::int64_t rows, std::int64_t cols,
                    support::PoolVector<float>& dst) {
  dst.resize(static_cast<std::size_t>(rows * cols));
  constexpr std::int64_t kTile = 32;
  for (std::int64_t i0 = 0; i0 < rows; i0 += kTile)
    for (std::int64_t j0 = 0; j0 < cols; j0 += kTile)
      for (std::int64_t i = i0; i < std::min(rows, i0 + kTile); ++i)
        for (std::int64_t j = j0; j < std::min(cols, j0 + kTile); ++j)
          dst[j * rows + i] = src[i * cols + j];
}

}  // namespace

Tensor matmul(const Tensor& a, const Tensor& b) {
  assert(a.cols() == b.rows());
  const std::int64_t m = a.rows();
  const std::int64_t k = a.cols();
  const std::int64_t n = b.cols();
  const std::int64_t flops = m * k * n;
  auto node = make_op_node(
      {static_cast<int>(m), static_cast<int>(n)}, {a.node(), b.node()},
      [m, k, n, flops](Node& out) {
        Node& A = *out.parents[0];
        Node& B = *out.parents[1];
        const float* g = out.grad.data();
        if (A.requires_grad) {
          // dA[i,l] += sum_j g[i,j] * B[l,j] — a GEMM over dot products with
          // B's rows already contiguous in j (B itself is the packed panel).
          // Register-blocked 4x2, bit-identical to one simd::dot per entry.
          float* ga = A.grad.data();
          const float* pb = B.data.data();
          for_row_blocks(m, flops, [&](std::int64_t i0, std::int64_t i1) {
            detail::gemm_dot_panels<true>(g + i0 * n, n, pb, n, i1 - i0, k, n,
                                          ga + i0 * k, k);
          });
        }
        if (B.requires_grad) {
          // dB[l,:] += A[i,l] * g[i,:], i ascending. Pack A transposed so
          // each dB row reads a contiguous At row; parallel over dB rows,
          // register-blocked four rows at a time with the column strips held
          // in registers across the whole i loop.
          float* gb = B.grad.data();
          support::PoolVector<float> at;  // [k, m]
          transpose_into(A.data.data(), m, k, at);
          for_row_blocks(k, flops, [&](std::int64_t l0, std::int64_t l1) {
            detail::gemm_axpy_panels(at.data() + l0 * m, m, g, n, l1 - l0, m,
                                     n, gb + l0 * n, n);
          });
        }
      });
  // Forward: pack B transposed once; the panel is reused by every row block.
  // The register-blocked micro-kernel computes 4x2 outputs per call, each
  // still the canonical 8-wide tree dot product of its A row and Bt row.
  const float* pa = a.data();
  float* pc = node->data.data();
  support::PoolVector<float> bt;  // [n, k]
  transpose_into(b.data(), k, n, bt);
  for_row_blocks(m, flops, [&](std::int64_t i0, std::int64_t i1) {
    detail::gemm_dot_panels<false>(pa + i0 * k, k, bt.data(), k, i1 - i0, n,
                                   k, pc + i0 * n, n);
  });
  return Tensor(node);
}

namespace {

Tensor elementwise(const Tensor& a, const Tensor& b, float sign_b,
                   bool product) {
  assert(a.shape() == b.shape());
  auto node = make_op_node(
      a.shape(), {a.node(), b.node()},
      [sign_b, product](Node& out) {
        Node& A = *out.parents[0];
        Node& B = *out.parents[1];
        const std::size_t n = out.data.size();
        for (std::size_t i = 0; i < n; ++i) {
          float g = out.grad[i];
          if (product) {
            if (A.requires_grad) A.grad[i] += g * B.data[i];
            if (B.requires_grad) B.grad[i] += g * A.data[i];
          } else {
            if (A.requires_grad) A.grad[i] += g;
            if (B.requires_grad) B.grad[i] += g * sign_b;
          }
        }
      });
  const std::size_t n = node->data.size();
  for (std::size_t i = 0; i < n; ++i)
    node->data[i] = product ? a.data()[i] * b.data()[i]
                            : a.data()[i] + sign_b * b.data()[i];
  return Tensor(node);
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, 1.0f, false);
}
Tensor sub(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, -1.0f, false);
}
Tensor mul(const Tensor& a, const Tensor& b) {
  return elementwise(a, b, 0.0f, true);
}

Tensor add_bias(const Tensor& a, const Tensor& b) {
  return add_bias_act(a, b, Act::None);
}

namespace {

inline float apply_act(float x, Act act) {
  switch (act) {
    case Act::Relu:
      return x > 0.0f ? x : 0.0f;
    case Act::Tanh:
      return std::tanh(x);
    case Act::Sigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case Act::None:
      break;
  }
  return x;
}

/// d act / d pre-activation, expressed through the activation's own output y
/// (all three activations allow that, which spares caching the input).
inline float act_derivative(float y, Act act) {
  switch (act) {
    case Act::Relu:
      return y > 0.0f ? 1.0f : 0.0f;
    case Act::Tanh:
      return 1.0f - y * y;
    case Act::Sigmoid:
      return y * (1.0f - y);
    case Act::None:
      break;
  }
  return 1.0f;
}

/// y[0..n) = act(a[0..n) + b[0..n)). The add is 8-wide; relu stays 8-wide
/// via max (bit-identical to the scalar `x > 0 ? x : 0`), tanh/sigmoid
/// transform the stored sums with scalar libm calls.
void bias_act_row(const float* a, const float* b, float* y, std::int64_t n,
                  Act act) {
  std::int64_t j = 0;
  if (act == Act::Relu) {
    v8f zero = v8f::zero();
    for (; j + simd::kLanes <= n; j += simd::kLanes)
      v8f::max(v8f::load(a + j) + v8f::load(b + j), zero).store(y + j);
  } else {
    for (; j + simd::kLanes <= n; j += simd::kLanes)
      (v8f::load(a + j) + v8f::load(b + j)).store(y + j);
  }
  for (; j < n; ++j) y[j] = apply_act(a[j] + b[j], act);
  if (act == Act::Tanh || act == Act::Sigmoid) {
    // The vector blocks above stored the raw sums; finish them scalar. The
    // tail already applied the activation.
    for (std::int64_t t = 0; t < n - (n % simd::kLanes); ++t)
      y[t] = apply_act(y[t], act);
  }
}

/// gd[0..8) = g * dact(y) for one 8-lane block, matching act_derivative's
/// scalar expressions lane for lane (same multiplication association).
inline v8f act_backward_block(v8f g, v8f y, Act act) {
  switch (act) {
    case Act::Relu:
      return v8f::where_gt_zero(y, g);
    case Act::Tanh:
      return g * (v8f::broadcast(1.0f) - y * y);
    case Act::Sigmoid:
      return g * (y * (v8f::broadcast(1.0f) - y));
    case Act::None:
      break;
  }
  return g;
}

}  // namespace

Tensor add_bias_act(const Tensor& a, const Tensor& b, Act act) {
  assert(b.rows() == 1 && b.cols() == a.cols());
  const std::int64_t m = a.rows();
  const std::int64_t n = a.cols();
  const std::int64_t work = m * n;
  auto node = make_op_node(
      {static_cast<int>(m), static_cast<int>(n)}, {a.node(), b.node()},
      [m, n, act, work](Node& out) {
        Node& A = *out.parents[0];
        Node& B = *out.parents[1];
        // Partition by *columns*: each column owns its bias-gradient slot, so
        // the row sum stays an ordered (i ascending) deterministic reduction
        // inside one work item. Within a column span the update is 8-wide;
        // the per-(i,j) value never depends on the span boundaries.
        for_row_blocks(n, work, [&](std::int64_t j0, std::int64_t j1) {
          for (std::int64_t i = 0; i < m; ++i) {
            const float* grow = out.grad.data() + i * n;
            const float* yrow = out.data.data() + i * n;
            float* garow = A.requires_grad ? A.grad.data() + i * n : nullptr;
            float* gb = B.requires_grad ? B.grad.data() : nullptr;
            std::int64_t j = j0;
            for (; j + simd::kLanes <= j1; j += simd::kLanes) {
              v8f gd = act_backward_block(v8f::load(grow + j),
                                          v8f::load(yrow + j), act);
              if (garow != nullptr)
                (v8f::load(garow + j) + gd).store(garow + j);
              if (gb != nullptr) (v8f::load(gb + j) + gd).store(gb + j);
            }
            for (; j < j1; ++j) {
              float gd = grow[j] * act_derivative(yrow[j], act);
              if (garow != nullptr) garow[j] += gd;
              if (gb != nullptr) gb[j] += gd;
            }
          }
        });
      });
  const float* pa = a.data();
  const float* pb = b.data();
  float* py = node->data.data();
  for_row_blocks(m, work, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i)
      bias_act_row(pa + i * n, pb, py + i * n, n, act);
  });
  return Tensor(node);
}

Tensor scale(const Tensor& a, float s) {
  auto node = make_op_node(a.shape(), {a.node()}, [s](Node& out) {
    Node& A = *out.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      A.grad[i] += s * out.grad[i];
  });
  for (std::size_t i = 0; i < node->data.size(); ++i)
    node->data[i] = s * a.data()[i];
  return Tensor(node);
}

Tensor relu(const Tensor& a) {
  auto node = make_op_node(a.shape(), {a.node()}, [](Node& out) {
    Node& A = *out.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      if (out.data[i] > 0.0f) A.grad[i] += out.grad[i];
  });
  for (std::size_t i = 0; i < node->data.size(); ++i)
    node->data[i] = std::max(0.0f, a.data()[i]);
  return Tensor(node);
}

Tensor tanh_t(const Tensor& a) {
  auto node = make_op_node(a.shape(), {a.node()}, [](Node& out) {
    Node& A = *out.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      A.grad[i] += (1.0f - out.data[i] * out.data[i]) * out.grad[i];
  });
  for (std::size_t i = 0; i < node->data.size(); ++i)
    node->data[i] = std::tanh(a.data()[i]);
  return Tensor(node);
}

Tensor sigmoid(const Tensor& a) {
  auto node = make_op_node(a.shape(), {a.node()}, [](Node& out) {
    Node& A = *out.parents[0];
    if (!A.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      A.grad[i] += out.data[i] * (1.0f - out.data[i]) * out.grad[i];
  });
  for (std::size_t i = 0; i < node->data.size(); ++i)
    node->data[i] = 1.0f / (1.0f + std::exp(-a.data()[i]));
  return Tensor(node);
}

Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps) {
  assert(gamma.rows() == 1 && gamma.cols() == x.cols());
  assert(beta.rows() == 1 && beta.cols() == x.cols());
  const std::int64_t m = x.rows();
  const std::int64_t n = x.cols();
  // Cache per-row mean and inverse stddev for the backward pass.
  auto stats = support::make_pooled<support::PoolVector<float>>(2 * m);
  auto node = make_op_node(
      {static_cast<int>(m), static_cast<int>(n)},
      {x.node(), gamma.node(), beta.node()},
      [m, n, stats](Node& out) {
        Node& X = *out.parents[0];
        Node& G = *out.parents[1];
        Node& B = *out.parents[2];
        const v8f vn = v8f::broadcast(static_cast<float>(n));
        for (std::int64_t i = 0; i < m; ++i) {
          const float mean = (*stats)[2 * i];
          const float inv_std = (*stats)[2 * i + 1];
          const v8f vmean = v8f::broadcast(mean);
          const v8f vinv = v8f::broadcast(inv_std);
          const float* xrow = X.data.data() + i * n;
          const float* grow = out.grad.data() + i * n;
          // xhat_j = (x_j - mean) * inv_std; y_j = gamma_j * xhat_j + beta_j.
          // The two row sums fold 8-lane blocks through the fixed tree, then
          // tail elements in order — one canonical reduction per row.
          v8f acc_dy_g = v8f::zero();
          v8f acc_dy_g_xhat = v8f::zero();
          std::int64_t j = 0;
          for (; j + simd::kLanes <= n; j += simd::kLanes) {
            v8f xhat = (v8f::load(xrow + j) - vmean) * vinv;
            v8f dy = v8f::load(grow + j);
            v8f dy_g = dy * v8f::load(G.data.data() + j);
            acc_dy_g += dy_g;
            acc_dy_g_xhat += dy_g * xhat;
            if (G.requires_grad)
              (v8f::load(G.grad.data() + j) + dy * xhat)
                  .store(G.grad.data() + j);
            if (B.requires_grad)
              (v8f::load(B.grad.data() + j) + dy).store(B.grad.data() + j);
          }
          float sum_dy_g = acc_dy_g.hsum();
          float sum_dy_g_xhat = acc_dy_g_xhat.hsum();
          for (; j < n; ++j) {
            float xhat = (xrow[j] - mean) * inv_std;
            float dy = grow[j];
            float dy_g = dy * G.data[j];
            sum_dy_g += dy_g;
            sum_dy_g_xhat += dy_g * xhat;
            if (G.requires_grad) G.grad[j] += dy * xhat;
            if (B.requires_grad) B.grad[j] += dy;
          }
          if (X.requires_grad) {
            float* gx = X.grad.data() + i * n;
            const v8f vs1 = v8f::broadcast(sum_dy_g);
            const v8f vs2 = v8f::broadcast(sum_dy_g_xhat);
            j = 0;
            for (; j + simd::kLanes <= n; j += simd::kLanes) {
              v8f xhat = (v8f::load(xrow + j) - vmean) * vinv;
              v8f dy_g = v8f::load(grow + j) * v8f::load(G.data.data() + j);
              v8f num = (vs1 + xhat * vs2) / vn;
              (v8f::load(gx + j) + vinv * (dy_g - num)).store(gx + j);
            }
            for (; j < n; ++j) {
              float xhat = (xrow[j] - mean) * inv_std;
              gx[j] += inv_std *
                       (grow[j] * G.data[j] -
                        (sum_dy_g + xhat * sum_dy_g_xhat) /
                            static_cast<float>(n));
            }
          }
        }
      });
  // Rows normalize independently (stats slots are per-row too). Mean and
  // variance use the canonical tree reductions of support/simd.h.
  const float* px = x.data();
  const float* pg = gamma.data();
  const float* pbeta = beta.data();
  float* py = node->data.data();
  for_row_blocks(m, m * n * 3, [&](std::int64_t i0, std::int64_t i1) {
    for (std::int64_t i = i0; i < i1; ++i) {
      const float* xrow = px + i * n;
      float mean = simd::sum(xrow, n) / static_cast<float>(n);
      float var = simd::sum_sq_diff(xrow, mean, n) / static_cast<float>(n);
      float inv_std = 1.0f / std::sqrt(var + eps);
      (*stats)[2 * i] = mean;
      (*stats)[2 * i + 1] = inv_std;
      float* yrow = py + i * n;
      const v8f vmean = v8f::broadcast(mean);
      const v8f vinv = v8f::broadcast(inv_std);
      std::int64_t j = 0;
      for (; j + simd::kLanes <= n; j += simd::kLanes) {
        v8f xhat = (v8f::load(xrow + j) - vmean) * vinv;
        (v8f::load(pg + j) * xhat + v8f::load(pbeta + j)).store(yrow + j);
      }
      for (; j < n; ++j) {
        float xhat = (xrow[j] - mean) * inv_std;
        yrow[j] = pg[j] * xhat + pbeta[j];
      }
    }
  });
  return Tensor(node);
}

Tensor embedding(const Tensor& table, const std::vector<int>& indices) {
  const std::int64_t d = table.cols();
  const std::int64_t m = static_cast<std::int64_t>(indices.size());
  // The index copy exists only for the backward closure; skip it when the
  // tape is off or the table is frozen (the closure is dropped either way).
  std::shared_ptr<support::PoolVector<int>> idx;
  if (!inference_mode() && table.requires_grad())
    idx = support::make_pooled<support::PoolVector<int>>(indices.begin(),
                                                         indices.end());
  auto node = make_op_node({static_cast<int>(m), static_cast<int>(d)},
                           {table.node()}, [d, m, idx](Node& out) {
                             Node& T = *out.parents[0];
                             if (!T.requires_grad) return;
                             for (std::int64_t i = 0; i < m; ++i)
                               simd::add_inplace(
                                   T.grad.data() + (*idx)[i] * d,
                                   out.grad.data() + i * d, d);
                           });
  for (std::int64_t i = 0; i < m; ++i) {
    assert(indices[i] >= 0 && indices[i] < table.rows());
    std::copy(table.data() + indices[i] * d,
              table.data() + (indices[i] + 1) * d, node->data.data() + i * d);
  }
  return Tensor(node);
}

Tensor gather_rows(const Tensor& x, const std::vector<int>& index) {
  return embedding(x, index);  // identical semantics
}

Tensor index_add_rows(const Tensor& x, const std::vector<int>& dst,
                      const std::vector<float>& coeff, int num_rows) {
  assert(dst.size() == static_cast<std::size_t>(x.rows()));
  assert(coeff.size() == dst.size());
  const std::int64_t d = x.cols();
  const std::int64_t e = x.rows();
  // Backward-only copies (forward reads the caller's vectors directly).
  std::shared_ptr<support::PoolVector<int>> dst_copy;
  std::shared_ptr<support::PoolVector<float>> coeff_copy;
  if (!inference_mode() && x.requires_grad()) {
    dst_copy =
        support::make_pooled<support::PoolVector<int>>(dst.begin(), dst.end());
    coeff_copy = support::make_pooled<support::PoolVector<float>>(
        coeff.begin(), coeff.end());
  }
  auto node = make_op_node(
      {num_rows, static_cast<int>(d)}, {x.node()},
      [d, e, dst_copy, coeff_copy](Node& out) {
        Node& X = *out.parents[0];
        if (!X.requires_grad) return;
        // Each edge owns its x-gradient row; destination rows are only read.
        for_row_blocks(e, e * d, [&](std::int64_t i0, std::int64_t i1) {
          for (std::int64_t i = i0; i < i1; ++i)
            simd::axpy(X.grad.data() + i * d, (*coeff_copy)[i],
                       out.grad.data() + (*dst_copy)[i] * d, d);
        });
      });
  for (std::int64_t i = 0; i < e; ++i) {
    assert(dst[i] >= 0 && dst[i] < num_rows);
    simd::axpy(node->data.data() + dst[i] * d, coeff[i], x.data() + i * d, d);
  }
  return Tensor(node);
}

Tensor segment_mean(const Tensor& x, const std::vector<int>& segment,
                    int num_segments) {
  assert(segment.size() == static_cast<std::size_t>(x.rows()));
  const std::int64_t d = x.cols();
  const std::int64_t n = x.rows();
  auto counts = support::make_pooled<support::PoolVector<float>>(
      static_cast<std::size_t>(num_segments), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) (*counts)[segment[i]] += 1.0f;
  std::shared_ptr<support::PoolVector<int>> seg;  // backward-only copy
  if (!inference_mode() && x.requires_grad())
    seg = support::make_pooled<support::PoolVector<int>>(segment.begin(),
                                                         segment.end());
  auto node = make_op_node(
      {num_segments, static_cast<int>(d)}, {x.node()},
      [d, n, seg, counts](Node& out) {
        Node& X = *out.parents[0];
        if (!X.requires_grad) return;
        for (std::int64_t i = 0; i < n; ++i)
          simd::axpy(X.grad.data() + i * d, 1.0f / (*counts)[(*seg)[i]],
                     out.grad.data() + (*seg)[i] * d, d);
      });
  for (std::int64_t i = 0; i < n; ++i)
    simd::axpy(node->data.data() + segment[i] * d, 1.0f / (*counts)[segment[i]],
               x.data() + i * d, d);
  return Tensor(node);
}

Tensor log_softmax(const Tensor& x) {
  const std::int64_t m = x.rows();
  const std::int64_t n = x.cols();
  auto node = make_op_node(
      {static_cast<int>(m), static_cast<int>(n)}, {x.node()},
      [m, n](Node& out) {
        Node& X = *out.parents[0];
        if (!X.requires_grad) return;
        for (std::int64_t i = 0; i < m; ++i) {
          float sum_g = 0.0f;
          for (std::int64_t j = 0; j < n; ++j) sum_g += out.grad[i * n + j];
          for (std::int64_t j = 0; j < n; ++j)
            X.grad[i * n + j] +=
                out.grad[i * n + j] - std::exp(out.data[i * n + j]) * sum_g;
        }
      });
  for (std::int64_t i = 0; i < m; ++i) {
    float mx = x.data()[i * n];
    for (std::int64_t j = 1; j < n; ++j)
      mx = std::max(mx, x.data()[i * n + j]);
    float sum = 0.0f;
    for (std::int64_t j = 0; j < n; ++j)
      sum += std::exp(x.data()[i * n + j] - mx);
    float lse = mx + std::log(sum);
    for (std::int64_t j = 0; j < n; ++j)
      node->data[i * n + j] = x.data()[i * n + j] - lse;
  }
  return Tensor(node);
}

Tensor nll_loss(const Tensor& log_probs, const std::vector<int>& targets) {
  assert(targets.size() == static_cast<std::size_t>(log_probs.rows()));
  const std::int64_t m = log_probs.rows();
  const std::int64_t n = log_probs.cols();
  std::shared_ptr<support::PoolVector<int>> tgt;  // backward-only copy
  if (!inference_mode() && log_probs.requires_grad())
    tgt = support::make_pooled<support::PoolVector<int>>(targets.begin(),
                                                         targets.end());
  auto node = make_op_node({1, 1}, {log_probs.node()}, [m, n, tgt](Node& out) {
    Node& L = *out.parents[0];
    if (!L.requires_grad) return;
    float g = out.grad[0] / static_cast<float>(m);
    for (std::int64_t i = 0; i < m; ++i) L.grad[i * n + (*tgt)[i]] -= g;
  });
  float loss = 0.0f;
  for (std::int64_t i = 0; i < m; ++i) {
    assert(targets[i] >= 0 && targets[i] < n);
    loss -= log_probs.data()[i * n + targets[i]];
  }
  node->data[0] = loss / static_cast<float>(m);
  return Tensor(node);
}

Tensor dropout(const Tensor& x, float p, Rng& rng, bool training) {
  if (!training || p <= 0.0f) return x;
  auto mask = support::make_pooled<support::PoolVector<float>>(
      static_cast<std::size_t>(x.numel()));
  float keep = 1.0f - p;
  for (float& v : *mask) v = rng.bernoulli(keep) ? 1.0f / keep : 0.0f;
  auto node = make_op_node(x.shape(), {x.node()}, [mask](Node& out) {
    Node& X = *out.parents[0];
    if (!X.requires_grad) return;
    for (std::size_t i = 0; i < out.data.size(); ++i)
      X.grad[i] += (*mask)[i] * out.grad[i];
  });
  for (std::int64_t i = 0; i < x.numel(); ++i)
    node->data[i] = (*mask)[i] * x.data()[i];
  return Tensor(node);
}

int argmax_row(const float* row, int n) {
  int best = 0;
  for (int j = 1; j < n; ++j)
    if (row[j] > row[best]) best = j;
  return best;
}

std::vector<int> argmax_rows(const Tensor& x) {
  std::vector<int> out(x.rows());
  for (int i = 0; i < x.rows(); ++i)
    out[i] = argmax_row(x.data() + static_cast<std::int64_t>(i) * x.cols(),
                        x.cols());
  return out;
}

}  // namespace irgnn::tensor
