// Minimal tape-based autograd tensor library (the libtorch stand-in).
//
// Tensors are handles to shared nodes holding float data, an optional
// gradient buffer and a backward closure. Ops build the DAG eagerly;
// Tensor::backward() topologically sorts the graph and accumulates
// gradients. Shapes are rank-1/2 (vectors and matrices) — all the GNN needs.
// Sizes and index arithmetic are 64-bit throughout, so batched graphs with
// rows*cols beyond 2^31 don't overflow.
//
// Heavy kernels (matmul and its backward, fused bias+activation, layer norm,
// row scatter/gather reductions) run 8-wide through the simd::v8f wrapper,
// tile for cache locality and parallelize over row blocks on the shared
// ThreadPool; every output element is owned by exactly one index and inner
// summation order is the fixed 8-lane accumulation tree of support/simd.h,
// so results are bit-identical for every thread count and ISA.
//
// The hot path is allocation-free after warmup: nodes, data/grad buffers,
// per-op auxiliary vectors and pack scratch all recycle through the buffer
// arena (support/arena.h), and backward closures live inline in the node
// (support/inline_function.h) instead of on the heap.
//
// The GEMM inner loops are register-blocked (tensor/gemm.h): 4x2 blocks of
// dot-product accumulators held in registers over a packed B panel, with
// every output element's reduction order unchanged from the single-dot
// kernels. InferenceGuard provides a thread-local no-grad mode in which ops
// record no tape at all — the inference fast path of gnn::StaticModel.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/arena.h"
#include "support/inline_function.h"
#include "support/rng.h"

namespace irgnn::tensor {

struct Shape {
  int rows = 0;
  int cols = 1;  // rank-1 tensors have cols == 1
  std::int64_t numel() const {
    return static_cast<std::int64_t>(rows) * cols;
  }
  bool operator==(const Shape& o) const {
    return rows == o.rows && cols == o.cols;
  }
};

class Tensor;

namespace detail {
struct Node {
  /// No tape op takes more than this many inputs (layer_norm: x/gamma/beta).
  static constexpr int kMaxParents = 3;

  Shape shape;
  support::PoolVector<float> data;
  support::PoolVector<float> grad;  // sized lazily on first backward touch
  bool requires_grad = false;
  int num_parents = 0;
  /// Epoch stamp of the last backward() traversal that visited this node —
  /// replaces a per-call hash set, so the topological sort allocates nothing.
  std::uint64_t visit_mark = 0;
  std::array<std::shared_ptr<Node>, kMaxParents> parents;
  support::InlineFunction<void(Node&), 64> backward_fn;  // accumulates into
                                                         // parents' grads

  void ensure_grad() {
    if (grad.empty()) grad.assign(data.size(), 0.0f);
  }
};
}  // namespace detail

class Tensor {
 public:
  Tensor() = default;

  // --- Constructors -------------------------------------------------------
  static Tensor zeros(Shape shape, bool requires_grad = false);
  static Tensor full(Shape shape, float value, bool requires_grad = false);
  static Tensor from_data(Shape shape, std::vector<float> values,
                          bool requires_grad = false);
  /// Xavier/Glorot-uniform initialized parameter.
  static Tensor xavier(Shape shape, Rng& rng);
  /// Kaiming/He-normal initialized parameter (for ReLU stacks).
  static Tensor kaiming(Shape shape, Rng& rng);

  bool defined() const { return node_ != nullptr; }
  const Shape& shape() const { return node_->shape; }
  int rows() const { return node_->shape.rows; }
  int cols() const { return node_->shape.cols; }
  std::int64_t numel() const { return node_->shape.numel(); }

  float* data() { return node_->data.data(); }
  const float* data() const { return node_->data.data(); }

  /// Mutable gradient buffer; allocates (zero-filled) on first touch.
  float* grad() {
    node_->ensure_grad();
    return node_->grad.data();
  }
  /// Read-only gradient access that never allocates: null until a backward
  /// pass (or the mutable accessor) materialized the buffer. Reductions and
  /// tests should prefer this so inspection can't change allocation state.
  const float* grad() const {
    return node_->grad.empty() ? nullptr : node_->grad.data();
  }
  /// Whether the gradient buffer has been materialized.
  bool grad_allocated() const { return !node_->grad.empty(); }

  bool requires_grad() const { return node_->requires_grad; }

  float at(int r, int c = 0) const {
    return node_->data[static_cast<std::int64_t>(r) * cols() + c];
  }
  float item() const { return node_->data.at(0); }

  /// Runs reverse-mode autodiff from this (scalar) tensor.
  void backward();

  /// Clears the gradient buffer (optimizers call this between steps).
  void zero_grad() {
    if (!node_->grad.empty())
      std::fill(node_->grad.begin(), node_->grad.end(), 0.0f);
  }

  std::shared_ptr<detail::Node> node() const { return node_; }
  explicit Tensor(std::shared_ptr<detail::Node> node)
      : node_(std::move(node)) {}

 private:
  std::shared_ptr<detail::Node> node_;
};

/// Caps how many threads the parallel kernels (matmul and its backward,
/// add_bias_act, index_add_rows backward) may use; <= 0 restores the default
/// of "all global-pool workers". Results are bit-identical for every value —
/// this only trades wall-clock for core occupancy.
void set_kernel_parallelism(int max_threads);
int kernel_parallelism();

/// RAII no-grad scope for the inference fast path. While an InferenceGuard
/// is alive on the current thread, ops record no tape: outputs carry
/// requires_grad = false, reference no parents (so intermediate activations
/// recycle through the arena as soon as their handle dies), store no
/// backward closure, and backward-only scratch (index/coefficient/target
/// copies) is never built. Forward values are bit-identical to recording
/// mode — the guard changes what is *remembered*, never what is computed.
/// backward() on anything produced inside the scope throws, since nothing
/// requires grad. Guards nest; each thread (e.g. a pool worker running one
/// inference shard) arms its own.
class InferenceGuard {
 public:
  InferenceGuard();
  ~InferenceGuard();
  InferenceGuard(const InferenceGuard&) = delete;
  InferenceGuard& operator=(const InferenceGuard&) = delete;

 private:
  bool prev_;
};

/// True while an InferenceGuard is alive on this thread.
bool inference_mode();

// --- Ops (forward builds the tape) ------------------------------------------

/// C[m,n] = A[m,k] * B[k,n]. Blocked over row/column tiles with B packed
/// transposed so the inner loop is one 8-wide contiguous dot product.
Tensor matmul(const Tensor& a, const Tensor& b);

/// Elementwise addition of same-shape tensors.
Tensor add(const Tensor& a, const Tensor& b);

/// Adds a row vector b[1,n] to every row of a[m,n].
Tensor add_bias(const Tensor& a, const Tensor& b);

/// Pointwise activations fusable into add_bias_act.
enum class Act { None, Relu, Tanh, Sigmoid };

/// Fused act(a + broadcast bias): one pass over the data instead of two ops
/// and an intermediate tape node. b is [1,n], a is [m,n].
Tensor add_bias_act(const Tensor& a, const Tensor& b, Act act);

/// Elementwise subtraction / product.
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);

/// Scalar multiply.
Tensor scale(const Tensor& a, float s);

Tensor relu(const Tensor& a);
Tensor tanh_t(const Tensor& a);
Tensor sigmoid(const Tensor& a);

/// Row-wise layer normalization with learnable gamma/beta (both [1,n]).
Tensor layer_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  float eps = 1e-5f);

/// out[i,:] = table[indices[i],:]
Tensor embedding(const Tensor& table, const std::vector<int>& indices);

/// out[i,:] = x[index[i],:]  (row gather)
Tensor gather_rows(const Tensor& x, const std::vector<int>& index);

/// out[num_rows, d]; out[dst[e],:] += coeff[e] * x[e,:]
Tensor index_add_rows(const Tensor& x, const std::vector<int>& dst,
                      const std::vector<float>& coeff, int num_rows);

/// Mean over row segments: out[s,:] = mean over {i : segment[i]==s} of x[i,:].
/// Empty segments produce zero rows.
Tensor segment_mean(const Tensor& x, const std::vector<int>& segment,
                    int num_segments);

/// Row-wise log-softmax.
Tensor log_softmax(const Tensor& x);

/// Mean negative log-likelihood of `targets` under log-probabilities.
Tensor nll_loss(const Tensor& log_probs, const std::vector<int>& targets);

/// Inverted dropout; identity when `training` is false.
Tensor dropout(const Tensor& x, float p, Rng& rng, bool training);

/// argmax of one contiguous row (strict >, first maximum wins) — the
/// non-allocating primitive behind argmax_rows and the inference engine's
/// prediction loops.
int argmax_row(const float* row, int n);

/// argmax per row.
std::vector<int> argmax_rows(const Tensor& x);

}  // namespace irgnn::tensor
