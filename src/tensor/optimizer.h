// First-order optimizers over parameter tensors.
#pragma once

#include <cmath>
#include <vector>

#include "support/arena.h"
#include "tensor/tensor.h"

namespace irgnn::tensor {

struct AdamOptions {
  float lr = 1e-3f;
  float beta1 = 0.9f;
  float beta2 = 0.999f;
  float eps = 1e-8f;
  float weight_decay = 0.0f;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam {
 public:
  using Options = AdamOptions;

  explicit Adam(std::vector<Tensor> params, AdamOptions options = {})
      : params_(std::move(params)), options_(options) {
    for (const Tensor& p : params_) {
      m_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
      v_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
    }
  }

  void zero_grad() {
    for (Tensor& p : params_) p.zero_grad();
  }

  void step() {
    ++t_;
    float bc1 = 1.0f - std::pow(options_.beta1, static_cast<float>(t_));
    float bc2 = 1.0f - std::pow(options_.beta2, static_cast<float>(t_));
    for (std::size_t k = 0; k < params_.size(); ++k) {
      Tensor& p = params_[k];
      float* w = p.data();
      float* g = p.grad();
      for (std::int64_t i = 0; i < p.numel(); ++i) {
        float grad = g[i] + options_.weight_decay * w[i];
        m_[k][i] = options_.beta1 * m_[k][i] + (1.0f - options_.beta1) * grad;
        v_[k][i] =
            options_.beta2 * v_[k][i] + (1.0f - options_.beta2) * grad * grad;
        float mhat = m_[k][i] / bc1;
        float vhat = v_[k][i] / bc2;
        w[i] -= options_.lr * mhat / (std::sqrt(vhat) + options_.eps);
      }
    }
  }

  const std::vector<Tensor>& params() const { return params_; }

 private:
  std::vector<Tensor> params_;
  Options options_;
  // Moment buffers recycle through the arena like every other hot-path
  // allocation, so rebuilding an optimizer between runs stays malloc-free.
  std::vector<support::PoolVector<float>> m_;
  std::vector<support::PoolVector<float>> v_;
  int t_ = 0;
};

/// Plain SGD with optional momentum (used in ablation tests).
class Sgd {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f)
      : params_(std::move(params)), lr_(lr), momentum_(momentum) {
    for (const Tensor& p : params_)
      velocity_.emplace_back(static_cast<std::size_t>(p.numel()), 0.0f);
  }

  void zero_grad() {
    for (Tensor& p : params_) p.zero_grad();
  }

  void step() {
    for (std::size_t k = 0; k < params_.size(); ++k) {
      Tensor& p = params_[k];
      float* w = p.data();
      float* g = p.grad();
      for (std::int64_t i = 0; i < p.numel(); ++i) {
        velocity_[k][i] = momentum_ * velocity_[k][i] - lr_ * g[i];
        w[i] += velocity_[k][i];
      }
    }
  }

 private:
  std::vector<Tensor> params_;
  float lr_;
  float momentum_;
  std::vector<support::PoolVector<float>> velocity_;
};

}  // namespace irgnn::tensor
