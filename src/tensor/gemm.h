// Register-blocked GEMM micro-kernels on top of simd::v8f.
//
// The PR 2 kernels computed one output element at a time: a single v8f
// accumulator walking the shared (k) dimension, folded through the fixed
// 8-lane tree, tail in order (simd::dot). That loads every A chunk once per
// output column and every B chunk once per output row. The micro-kernels
// here keep the *identical arithmetic per output element* — each C[i,j] is
// still exactly simd::dot(A row i, packed B column j) — but compute a 4x2
// block of C at once with all eight v8f accumulators held in registers, so
// each A chunk is loaded once per two columns and each packed-B chunk once
// per four rows. Register blocking changes only which loads are shared,
// never the order of any float addition, which is what keeps the results
// bit-identical to the PR 2 kernels (and to the scalar tree references in
// tests/tensor_test.cpp) across ISAs, thread counts and block shapes.
//
// Layout convention: `a` is row-major [m, k] with leading dimension lda;
// `bt` is the packed transpose of B — row j of bt is column j of B, length
// k, leading dimension ldb — produced once per GEMM and reused across every
// row block (the "packed B panel").
//
// gemm_axpy_panels is the register-blocked form of the dB backward GEMM
// (dB[l,:] += A[i,l] * G[i,:], i ascending): four destination rows tile
// their columns in 16-float strips held in registers across the whole i
// loop, preserving the per-element add order and the A[i,l]==0 skip of the
// PR 2 loop exactly.
#pragma once

#include <cstdint>

#include "support/simd.h"

namespace irgnn::tensor::detail {

/// Rows x packed-B columns of C computed per micro-kernel call. 8 v8f
/// accumulators + 1 A broadcast + 2 B loads stay comfortably inside 16
/// vector registers on AVX.
inline constexpr std::int64_t kGemmBlockRows = 4;
inline constexpr std::int64_t kGemmBlockCols = 2;

/// out[r][c] = dot(a + r*lda, b + c*ldb, k) for r < 4, c < 2, every element
/// with the canonical block/tree/tail order of simd::dot. The 8 accumulators
/// live in registers; each 8-float chunk of a row is loaded once per call
/// instead of once per output element.
inline void dot_panel_4x2(const float* a, std::int64_t lda, const float* b,
                          std::int64_t ldb, std::int64_t k, float out[4][2]) {
  using simd::v8f;
  const float* a0 = a;
  const float* a1 = a + lda;
  const float* a2 = a + 2 * lda;
  const float* a3 = a + 3 * lda;
  const float* b0 = b;
  const float* b1 = b + ldb;
  v8f c00 = v8f::zero(), c01 = v8f::zero();
  v8f c10 = v8f::zero(), c11 = v8f::zero();
  v8f c20 = v8f::zero(), c21 = v8f::zero();
  v8f c30 = v8f::zero(), c31 = v8f::zero();
  std::int64_t i = 0;
  for (; i + simd::kLanes <= k; i += simd::kLanes) {
    const v8f vb0 = v8f::load(b0 + i);
    const v8f vb1 = v8f::load(b1 + i);
    v8f va = v8f::load(a0 + i);
    c00 += va * vb0;
    c01 += va * vb1;
    va = v8f::load(a1 + i);
    c10 += va * vb0;
    c11 += va * vb1;
    va = v8f::load(a2 + i);
    c20 += va * vb0;
    c21 += va * vb1;
    va = v8f::load(a3 + i);
    c30 += va * vb0;
    c31 += va * vb1;
  }
  out[0][0] = c00.hsum();
  out[0][1] = c01.hsum();
  out[1][0] = c10.hsum();
  out[1][1] = c11.hsum();
  out[2][0] = c20.hsum();
  out[2][1] = c21.hsum();
  out[3][0] = c30.hsum();
  out[3][1] = c31.hsum();
  for (; i < k; ++i) {
    const float fb0 = b0[i];
    const float fb1 = b1[i];
    out[0][0] += a0[i] * fb0;
    out[0][1] += a0[i] * fb1;
    out[1][0] += a1[i] * fb0;
    out[1][1] += a1[i] * fb1;
    out[2][0] += a2[i] * fb0;
    out[2][1] += a2[i] * fb1;
    out[3][0] += a3[i] * fb0;
    out[3][1] += a3[i] * fb1;
  }
}

/// The PR 2-era kernel: one simd::dot per output element, no register
/// reuse. Kept as the bench's "before" and as the bit-identity reference
/// the register-blocked kernel is pinned against.
/// C[i,j] op= dot(a row i, bt row j, k); op is += when Accumulate.
template <bool Accumulate>
inline void gemm_dot_rowwise(const float* a, std::int64_t lda,
                             const float* bt, std::int64_t ldb, std::int64_t m,
                             std::int64_t n, std::int64_t k, float* c,
                             std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      const float v = simd::dot(arow, bt + j * ldb, k);
      if (Accumulate)
        crow[j] += v;
      else
        crow[j] = v;
    }
  }
}

/// Register-blocked GEMM over dot products: C[i,j] op= dot(a row i, bt row
/// j, k), computed in 4x2 blocks via dot_panel_4x2 with row/column
/// remainders falling back to single dots. Bit-identical to
/// gemm_dot_rowwise for every shape, including empty m/n/k.
template <bool Accumulate>
inline void gemm_dot_panels(const float* a, std::int64_t lda, const float* bt,
                            std::int64_t ldb, std::int64_t m, std::int64_t n,
                            std::int64_t k, float* c, std::int64_t ldc) {
  std::int64_t i = 0;
  for (; i + kGemmBlockRows <= m; i += kGemmBlockRows) {
    const float* arow = a + i * lda;
    float* crow = c + i * ldc;
    std::int64_t j = 0;
    for (; j + kGemmBlockCols <= n; j += kGemmBlockCols) {
      float out[4][2];
      dot_panel_4x2(arow, lda, bt + j * ldb, ldb, k, out);
      for (std::int64_t r = 0; r < kGemmBlockRows; ++r)
        for (std::int64_t cc = 0; cc < kGemmBlockCols; ++cc) {
          if (Accumulate)
            crow[r * ldc + j + cc] += out[r][cc];
          else
            crow[r * ldc + j + cc] = out[r][cc];
        }
    }
    for (; j < n; ++j) {  // odd trailing column of this 4-row band
      for (std::int64_t r = 0; r < kGemmBlockRows; ++r) {
        const float v = simd::dot(arow + r * lda, bt + j * ldb, k);
        if (Accumulate)
          crow[r * ldc + j] += v;
        else
          crow[r * ldc + j] = v;
      }
    }
  }
  if (i < m)  // remaining 1-3 rows
    gemm_dot_rowwise<Accumulate>(a + i * lda, lda, bt, ldb, m - i, n, k,
                                 c + i * ldc, ldc);
}

/// Register-blocked outer-product accumulation (the dB backward GEMM):
///   d[l, j] += at[l, i] * g[i, j]   for i ascending, skipping at[l,i]==0,
/// over l in [0, rows), j in [0, n). `at` is A packed transposed ([rows, m],
/// leading dimension lda); `g` is [m, n] with leading dimension ldg; `d` has
/// leading dimension ldd. Four destination rows process their columns in
/// 16-float strips whose accumulators stay in registers across the whole i
/// loop — each element still receives exactly the adds of the PR 2 per-row
/// simd::axpy loop, in the same ascending-i order with the same zero skip,
/// so the result is bit-identical.
inline void gemm_axpy_panels(const float* at, std::int64_t lda, const float* g,
                             std::int64_t ldg, std::int64_t rows,
                             std::int64_t m, std::int64_t n, float* d,
                             std::int64_t ldd) {
  using simd::v8f;
  std::int64_t l = 0;
  for (; l + 4 <= rows; l += 4) {
    const float* t0 = at + l * lda;
    const float* t1 = at + (l + 1) * lda;
    const float* t2 = at + (l + 2) * lda;
    const float* t3 = at + (l + 3) * lda;
    float* d0 = d + l * ldd;
    float* d1 = d + (l + 1) * ldd;
    float* d2 = d + (l + 2) * ldd;
    float* d3 = d + (l + 3) * ldd;
    std::int64_t j = 0;
    for (; j + 2 * simd::kLanes <= n; j += 2 * simd::kLanes) {
      v8f a00 = v8f::load(d0 + j), a01 = v8f::load(d0 + j + simd::kLanes);
      v8f a10 = v8f::load(d1 + j), a11 = v8f::load(d1 + j + simd::kLanes);
      v8f a20 = v8f::load(d2 + j), a21 = v8f::load(d2 + j + simd::kLanes);
      v8f a30 = v8f::load(d3 + j), a31 = v8f::load(d3 + j + simd::kLanes);
      for (std::int64_t i = 0; i < m; ++i) {
        const v8f g0 = v8f::load(g + i * ldg + j);
        const v8f g1 = v8f::load(g + i * ldg + j + simd::kLanes);
        if (t0[i] != 0.0f) {
          const v8f s = v8f::broadcast(t0[i]);
          a00 += s * g0;
          a01 += s * g1;
        }
        if (t1[i] != 0.0f) {
          const v8f s = v8f::broadcast(t1[i]);
          a10 += s * g0;
          a11 += s * g1;
        }
        if (t2[i] != 0.0f) {
          const v8f s = v8f::broadcast(t2[i]);
          a20 += s * g0;
          a21 += s * g1;
        }
        if (t3[i] != 0.0f) {
          const v8f s = v8f::broadcast(t3[i]);
          a30 += s * g0;
          a31 += s * g1;
        }
      }
      a00.store(d0 + j);
      a01.store(d0 + j + simd::kLanes);
      a10.store(d1 + j);
      a11.store(d1 + j + simd::kLanes);
      a20.store(d2 + j);
      a21.store(d2 + j + simd::kLanes);
      a30.store(d3 + j);
      a31.store(d3 + j + simd::kLanes);
    }
    for (; j + simd::kLanes <= n; j += simd::kLanes) {
      v8f a0 = v8f::load(d0 + j);
      v8f a1 = v8f::load(d1 + j);
      v8f a2 = v8f::load(d2 + j);
      v8f a3 = v8f::load(d3 + j);
      for (std::int64_t i = 0; i < m; ++i) {
        const v8f g0 = v8f::load(g + i * ldg + j);
        if (t0[i] != 0.0f) a0 += v8f::broadcast(t0[i]) * g0;
        if (t1[i] != 0.0f) a1 += v8f::broadcast(t1[i]) * g0;
        if (t2[i] != 0.0f) a2 += v8f::broadcast(t2[i]) * g0;
        if (t3[i] != 0.0f) a3 += v8f::broadcast(t3[i]) * g0;
      }
      a0.store(d0 + j);
      a1.store(d1 + j);
      a2.store(d2 + j);
      a3.store(d3 + j);
    }
    for (; j < n; ++j) {  // scalar column tail
      float s0 = d0[j], s1 = d1[j], s2 = d2[j], s3 = d3[j];
      for (std::int64_t i = 0; i < m; ++i) {
        const float gij = g[i * ldg + j];
        if (t0[i] != 0.0f) s0 += t0[i] * gij;
        if (t1[i] != 0.0f) s1 += t1[i] * gij;
        if (t2[i] != 0.0f) s2 += t2[i] * gij;
        if (t3[i] != 0.0f) s3 += t3[i] * gij;
      }
      d0[j] = s0;
      d1[j] = s1;
      d2[j] = s2;
      d3[j] = s3;
    }
  }
  for (; l < rows; ++l) {  // remaining 1-3 destination rows: PR 2 loop
    const float* trow = at + l * lda;
    float* drow = d + l * ldd;
    for (std::int64_t i = 0; i < m; ++i) {
      const float ail = trow[i];
      if (ail == 0.0f) continue;
      simd::axpy(drow, ail, g + i * ldg, n);
    }
  }
}

}  // namespace irgnn::tensor::detail
