// Register-blocked int8 GEMM micro-kernels for the quantized inference path,
// in the mold of tensor/gemm.h.
//
// Operand contract (established by gnn/quantize.cpp, asserted by its tests):
//
//   a  - quantized activations, uint8 restricted to [0, 127] (7-bit): the
//        activation quantizer clamps to that range by construction.
//   bt - quantized weights packed transposed, int8 in [-127, 127]: row j of
//        bt is output channel j of B, length k, leading dimension ldb.
//   c  - widened int32 accumulators: c[i,j] = sum_k a[i,k] * bt[j,k].
//
// The 7-bit activation range is what makes the AVX2 `maddubs` path exact
// rather than merely fast: _mm256_maddubs_epi16 computes pairs
// sat_i16(a0*b0 + a1*b1), and with |a| <= 127 and |b| <= 127 a pair sum is
// at most 2*127*127 = 32258 < 32767 — the saturation is provably
// unreachable. Every backend (AVX2 maddubs+madd, SSE2 widening unpack+madd,
// scalar) therefore computes the same exact integer products, and because
// int32 addition is associative and never overflows here (k*127*127 stays
// far below 2^31 for every shape this library produces), any fold order
// yields identical bits. The int8 path thus carries a *stronger* bit-identity
// contract than the float kernels: results are identical across ISAs, thread
// counts, batch compositions and register-blocking shapes by integer
// arithmetic alone. The kernels still fix one canonical order (k ascending
// in 32/16-lane blocks, tail in order) so the structure mirrors gemm.h and
// the reference kernel below stays a meaningful pin.
//
// The register-blocked kernel computes a 4x2 block of C per call with all 8
// vector accumulators in registers, so each 32-byte activation chunk is
// loaded once per two output channels and each packed weight chunk once per
// four rows — the same load-sharing the float dot_panel_4x2 does, with 4x
// the elements per register.
#pragma once

#include <cstdint>

#if defined(__AVX2__)
#include <immintrin.h>
#define IRGNN_GEMM_INT8_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#include <emmintrin.h>
#define IRGNN_GEMM_INT8_SSE 1
#endif

namespace irgnn::tensor::detail {

/// Always-scalar reference: the pin every vectorized backend is tested
/// against. sum_k a[k] * b[k] with exact int32 arithmetic.
inline std::int32_t dot_s8_ref(const std::uint8_t* a, const std::int8_t* b,
                               std::int64_t k) {
  std::int32_t s = 0;
  for (std::int64_t i = 0; i < k; ++i)
    s += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return s;
}

#if defined(IRGNN_GEMM_INT8_AVX2)

inline constexpr std::int64_t kInt8Lanes = 32;

namespace int8_impl {
/// Exact (never-overflowing) reduction of 8 int32 lanes; order immaterial.
inline std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x1));
  return _mm_cvtsi128_si32(s);
}

/// 32 products of one u8/s8 chunk folded to 8 int32 lanes. maddubs pairs
/// cannot saturate under the [0,127] activation contract (see file header).
inline __m256i mul32_to_epi32(__m256i a_u8, __m256i b_s8) {
  return _mm256_madd_epi16(_mm256_maddubs_epi16(a_u8, b_s8),
                           _mm256_set1_epi16(1));
}
}  // namespace int8_impl

/// sum_k a[k]*b[k], 32 lanes per step, scalar tail in order.
inline std::int32_t dot_s8(const std::uint8_t* a, const std::int8_t* b,
                           std::int64_t k) {
  __m256i acc = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + kInt8Lanes <= k; i += kInt8Lanes) {
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + i));
    acc = _mm256_add_epi32(acc, int8_impl::mul32_to_epi32(va, vb));
  }
  std::int32_t s = int8_impl::hsum_epi32(acc);
  for (; i < k; ++i)
    s += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return s;
}

/// out[r][c] = dot_s8(a + r*lda, b + c*ldb, k) for r < 4, c < 2. The 8
/// 256-bit accumulators (64 int8 MACs in flight per step) stay in registers;
/// each activation chunk is loaded once per two output channels.
inline void dot_panel_s8_4x2(const std::uint8_t* a, std::int64_t lda,
                             const std::int8_t* b, std::int64_t ldb,
                             std::int64_t k, std::int32_t out[4][2]) {
  const std::uint8_t* a0 = a;
  const std::uint8_t* a1 = a + lda;
  const std::uint8_t* a2 = a + 2 * lda;
  const std::uint8_t* a3 = a + 3 * lda;
  const std::int8_t* b0 = b;
  const std::int8_t* b1 = b + ldb;
  __m256i c00 = _mm256_setzero_si256(), c01 = _mm256_setzero_si256();
  __m256i c10 = _mm256_setzero_si256(), c11 = _mm256_setzero_si256();
  __m256i c20 = _mm256_setzero_si256(), c21 = _mm256_setzero_si256();
  __m256i c30 = _mm256_setzero_si256(), c31 = _mm256_setzero_si256();
  std::int64_t i = 0;
  for (; i + kInt8Lanes <= k; i += kInt8Lanes) {
    const __m256i vb0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b0 + i));
    const __m256i vb1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b1 + i));
    __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a0 + i));
    c00 = _mm256_add_epi32(c00, int8_impl::mul32_to_epi32(va, vb0));
    c01 = _mm256_add_epi32(c01, int8_impl::mul32_to_epi32(va, vb1));
    va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a1 + i));
    c10 = _mm256_add_epi32(c10, int8_impl::mul32_to_epi32(va, vb0));
    c11 = _mm256_add_epi32(c11, int8_impl::mul32_to_epi32(va, vb1));
    va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a2 + i));
    c20 = _mm256_add_epi32(c20, int8_impl::mul32_to_epi32(va, vb0));
    c21 = _mm256_add_epi32(c21, int8_impl::mul32_to_epi32(va, vb1));
    va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a3 + i));
    c30 = _mm256_add_epi32(c30, int8_impl::mul32_to_epi32(va, vb0));
    c31 = _mm256_add_epi32(c31, int8_impl::mul32_to_epi32(va, vb1));
  }
  out[0][0] = int8_impl::hsum_epi32(c00);
  out[0][1] = int8_impl::hsum_epi32(c01);
  out[1][0] = int8_impl::hsum_epi32(c10);
  out[1][1] = int8_impl::hsum_epi32(c11);
  out[2][0] = int8_impl::hsum_epi32(c20);
  out[2][1] = int8_impl::hsum_epi32(c21);
  out[3][0] = int8_impl::hsum_epi32(c30);
  out[3][1] = int8_impl::hsum_epi32(c31);
  for (; i < k; ++i) {
    const std::int32_t fb0 = b0[i];
    const std::int32_t fb1 = b1[i];
    out[0][0] += a0[i] * fb0;
    out[0][1] += a0[i] * fb1;
    out[1][0] += a1[i] * fb0;
    out[1][1] += a1[i] * fb1;
    out[2][0] += a2[i] * fb0;
    out[2][1] += a2[i] * fb1;
    out[3][0] += a3[i] * fb0;
    out[3][1] += a3[i] * fb1;
  }
}

#elif defined(IRGNN_GEMM_INT8_SSE)

inline constexpr std::int64_t kInt8Lanes = 16;

namespace int8_impl {
inline std::int32_t hsum_epi32(__m128i s) {
  s = _mm_add_epi32(s, _mm_unpackhi_epi64(s, s));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0x1));
  return _mm_cvtsi128_si32(s);
}

/// 16 products of one u8/s8 chunk folded to 4 int32 lanes via widening
/// unpack (u8 zero-extends, s8 sign-extends through a compare mask) and
/// _mm_madd_epi16 — exact on SSE2, no SSSE3 maddubs required.
inline __m128i mul16_to_epi32(__m128i a_u8, __m128i b_s8) {
  const __m128i zero = _mm_setzero_si128();
  const __m128i bsign = _mm_cmpgt_epi8(zero, b_s8);
  const __m128i alo = _mm_unpacklo_epi8(a_u8, zero);
  const __m128i ahi = _mm_unpackhi_epi8(a_u8, zero);
  const __m128i blo = _mm_unpacklo_epi8(b_s8, bsign);
  const __m128i bhi = _mm_unpackhi_epi8(b_s8, bsign);
  return _mm_add_epi32(_mm_madd_epi16(alo, blo), _mm_madd_epi16(ahi, bhi));
}
}  // namespace int8_impl

inline std::int32_t dot_s8(const std::uint8_t* a, const std::int8_t* b,
                           std::int64_t k) {
  __m128i acc = _mm_setzero_si128();
  std::int64_t i = 0;
  for (; i + kInt8Lanes <= k; i += kInt8Lanes) {
    const __m128i va =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + i));
    acc = _mm_add_epi32(acc, int8_impl::mul16_to_epi32(va, vb));
  }
  std::int32_t s = int8_impl::hsum_epi32(acc);
  for (; i < k; ++i)
    s += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  return s;
}

inline void dot_panel_s8_4x2(const std::uint8_t* a, std::int64_t lda,
                             const std::int8_t* b, std::int64_t ldb,
                             std::int64_t k, std::int32_t out[4][2]) {
  const std::uint8_t* a0 = a;
  const std::uint8_t* a1 = a + lda;
  const std::uint8_t* a2 = a + 2 * lda;
  const std::uint8_t* a3 = a + 3 * lda;
  const std::int8_t* b0 = b;
  const std::int8_t* b1 = b + ldb;
  __m128i c00 = _mm_setzero_si128(), c01 = _mm_setzero_si128();
  __m128i c10 = _mm_setzero_si128(), c11 = _mm_setzero_si128();
  __m128i c20 = _mm_setzero_si128(), c21 = _mm_setzero_si128();
  __m128i c30 = _mm_setzero_si128(), c31 = _mm_setzero_si128();
  std::int64_t i = 0;
  for (; i + kInt8Lanes <= k; i += kInt8Lanes) {
    const __m128i vb0 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + i));
    const __m128i vb1 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b1 + i));
    __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a0 + i));
    c00 = _mm_add_epi32(c00, int8_impl::mul16_to_epi32(va, vb0));
    c01 = _mm_add_epi32(c01, int8_impl::mul16_to_epi32(va, vb1));
    va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a1 + i));
    c10 = _mm_add_epi32(c10, int8_impl::mul16_to_epi32(va, vb0));
    c11 = _mm_add_epi32(c11, int8_impl::mul16_to_epi32(va, vb1));
    va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a2 + i));
    c20 = _mm_add_epi32(c20, int8_impl::mul16_to_epi32(va, vb0));
    c21 = _mm_add_epi32(c21, int8_impl::mul16_to_epi32(va, vb1));
    va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a3 + i));
    c30 = _mm_add_epi32(c30, int8_impl::mul16_to_epi32(va, vb0));
    c31 = _mm_add_epi32(c31, int8_impl::mul16_to_epi32(va, vb1));
  }
  out[0][0] = int8_impl::hsum_epi32(c00);
  out[0][1] = int8_impl::hsum_epi32(c01);
  out[1][0] = int8_impl::hsum_epi32(c10);
  out[1][1] = int8_impl::hsum_epi32(c11);
  out[2][0] = int8_impl::hsum_epi32(c20);
  out[2][1] = int8_impl::hsum_epi32(c21);
  out[3][0] = int8_impl::hsum_epi32(c30);
  out[3][1] = int8_impl::hsum_epi32(c31);
  for (; i < k; ++i) {
    const std::int32_t fb0 = b0[i];
    const std::int32_t fb1 = b1[i];
    out[0][0] += a0[i] * fb0;
    out[0][1] += a0[i] * fb1;
    out[1][0] += a1[i] * fb0;
    out[1][1] += a1[i] * fb1;
    out[2][0] += a2[i] * fb0;
    out[2][1] += a2[i] * fb1;
    out[3][0] += a3[i] * fb0;
    out[3][1] += a3[i] * fb1;
  }
}

#else  // scalar fallback

inline constexpr std::int64_t kInt8Lanes = 1;

inline std::int32_t dot_s8(const std::uint8_t* a, const std::int8_t* b,
                           std::int64_t k) {
  return dot_s8_ref(a, b, k);
}

inline void dot_panel_s8_4x2(const std::uint8_t* a, std::int64_t lda,
                             const std::int8_t* b, std::int64_t ldb,
                             std::int64_t k, std::int32_t out[4][2]) {
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 2; ++c) out[r][c] = dot_s8(a + r * lda, b + c * ldb, k);
}

#endif

/// The unblocked int8 GEMM: one dot_s8 per output element. The bench's
/// "before" shape and the rowwise fallback of the blocked kernel's row tail.
/// C[i,j] op= dot_s8(a row i, bt row j, k); op is += when Accumulate.
template <bool Accumulate>
inline void gemm_s8_rowwise(const std::uint8_t* a, std::int64_t lda,
                            const std::int8_t* bt, std::int64_t ldb,
                            std::int64_t m, std::int64_t n, std::int64_t k,
                            std::int32_t* c, std::int64_t ldc) {
  for (std::int64_t i = 0; i < m; ++i) {
    const std::uint8_t* arow = a + i * lda;
    std::int32_t* crow = c + i * ldc;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int32_t v = dot_s8(arow, bt + j * ldb, k);
      if (Accumulate)
        crow[j] += v;
      else
        crow[j] = v;
    }
  }
}

/// Register-blocked int8 GEMM over packed transposed weights: C[i,j] op=
/// dot_s8(a row i, bt row j, k) in 4x2 blocks via dot_panel_s8_4x2, row and
/// column remainders falling back to single dots. Bit-identical to
/// gemm_s8_rowwise — and to the scalar dot_s8_ref — for every shape,
/// including empty m/n/k (exact integer arithmetic; see file header).
template <bool Accumulate>
inline void gemm_s8_panels(const std::uint8_t* a, std::int64_t lda,
                           const std::int8_t* bt, std::int64_t ldb,
                           std::int64_t m, std::int64_t n, std::int64_t k,
                           std::int32_t* c, std::int64_t ldc) {
  std::int64_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const std::uint8_t* arow = a + i * lda;
    std::int32_t* crow = c + i * ldc;
    std::int64_t j = 0;
    for (; j + 2 <= n; j += 2) {
      std::int32_t out[4][2];
      dot_panel_s8_4x2(arow, lda, bt + j * ldb, ldb, k, out);
      for (std::int64_t r = 0; r < 4; ++r)
        for (std::int64_t cc = 0; cc < 2; ++cc) {
          if (Accumulate)
            crow[r * ldc + j + cc] += out[r][cc];
          else
            crow[r * ldc + j + cc] = out[r][cc];
        }
    }
    for (; j < n; ++j) {  // odd trailing output channel of this 4-row band
      for (std::int64_t r = 0; r < 4; ++r) {
        const std::int32_t v = dot_s8(arow + r * lda, bt + j * ldb, k);
        if (Accumulate)
          crow[r * ldc + j] += v;
        else
          crow[r * ldc + j] = v;
      }
    }
  }
  if (i < m)  // remaining 1-3 rows
    gemm_s8_rowwise<Accumulate>(a + i * lda, lda, bt, ldb, m - i, n, k,
                                c + i * ldc, ldc);
}

}  // namespace irgnn::tensor::detail
