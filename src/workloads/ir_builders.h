// Parameterized IR emitters for the benchmark suite.
//
// Each region becomes a module with (a) an OpenMP-outlined kernel function
// tagged "omp.outlined"="true" — the shape Clang gives `#pragma omp
// parallel for` bodies — and (b) a host function calling it, plus runtime
// declarations (libm, OpenMP barrier). The KernelSpec knobs (loop nest,
// stencil offsets, indirection, flop chains, atomics, barriers, branches)
// mirror the workload-trait knobs so the static view and the simulated
// dynamic behaviour stay coupled.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace irgnn::workloads {

struct KernelSpec {
  std::string name;

  /// Nested counted loops, outermost first. The outermost loop runs to the
  /// runtime bound %n; inner entries are compile-time constants.
  std::vector<std::int64_t> inner_extents;

  int num_arrays = 2;          // double* parameters a0..a{k-1}
  int flop_chain = 2;          // fmul/fadd chain length in the body
  bool indirect_gather = false;    // value loaded through an i64 index array
  bool pointer_chase = false;      // loop-carried data-dependent address
  bool atomic_reduction = false;   // atomicrmw fadd into a shared cell
  int math_calls = 0;              // calls to @sqrt / @exp (pure decls)
  int barrier_calls = 0;           // calls to @omp_barrier in the outer body
  bool data_dependent_branch = false;  // if (v > t) alternate computation
  /// Extra neighbour loads at +/- this element offset (stencil shape);
  /// 0 = pure streaming.
  std::int64_t stencil_offset = 0;
  /// A small innermost loop with this constant trip count (unrollable by
  /// the flag sequences — it exposes the region's micro-structure to the
  /// augmented graphs). 0 = none.
  std::int64_t unrollable_extent = 0;
};

/// Builds the module for one kernel spec. The outlined function has
/// signature void(i64 %n, double* %a0, ..., i64* %idx?).
std::unique_ptr<ir::Module> build_kernel_module(const KernelSpec& spec);

/// Name of the outlined region function for a kernel name.
std::string outlined_name(const std::string& kernel_name);

}  // namespace irgnn::workloads
