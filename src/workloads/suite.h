// The benchmark suite: 56 OpenMP regions named after the paper's Fig. 3
// region list (NAS bt/cg/ft/is/lu/mg/sp, Rodinia bfs/b+tree/cfd/hotspot/
// hotspot3D/kmeans/lud/nn/needle/pathfinder/streamcluster, LULESH x8,
// CLOMP x11, HACCmk, quicksilver, blackscholes). The paper evaluates 57
// regions minus the IS random generator = 56.
//
// Every region couples (a) a KernelSpec — the IR the GNN sees — with (b)
// WorkloadTraits — the behaviour the simulator times. The coupling is the
// premise of the paper: regions whose IR looks alike behave alike, except
// for the explicitly dynamic regions (call_variability > 0) whose behaviour
// the IR cannot show.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "sim/workload_model.h"
#include "workloads/ir_builders.h"

namespace irgnn::workloads {

struct RegionSpec {
  std::string name;    // e.g. "bt xsolve", "clomp 1046"
  std::string family;  // "nas", "rodinia", "lulesh", "clomp", "misc"
  KernelSpec kernel;
  sim::WorkloadTraits traits;
};

/// All 56 regions, in a stable order.
const std::vector<RegionSpec>& benchmark_suite();

/// Region lookup by name; nullptr if absent.
const RegionSpec* find_region(const std::string& name);

/// Builds the region's IR module (host + outlined kernel).
std::unique_ptr<ir::Module> build_region_module(const RegionSpec& spec);

/// Traits of all regions, in suite order (what the simulator consumes).
std::vector<sim::WorkloadTraits> suite_traits();

/// The NAS-centric subset used by the input-size experiment (Fig. 10).
std::vector<std::string> input_size_subset();

}  // namespace irgnn::workloads
