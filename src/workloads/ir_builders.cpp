#include "workloads/ir_builders.h"

#include <cassert>

#include "ir/irbuilder.h"

namespace irgnn::workloads {

using ir::BasicBlock;
using ir::Function;
using ir::ICmpPred;
using ir::IRBuilder;
using ir::Instruction;
using ir::Module;
using ir::Opcode;
using ir::Type;
using ir::Value;

std::string outlined_name(const std::string& kernel_name) {
  return kernel_name + ".omp_outlined";
}

namespace {

/// Emits a frontend-style counted loop driven by an alloca'd counter
/// (mem2reg and friends then have real work to do on the augmented
/// variants). Returns the loaded counter value inside the body.
struct LoopFrame {
  BasicBlock* header;
  BasicBlock* body;
  BasicBlock* exit;
  Value* counter;        // loaded i64 value in the body
  Instruction* counter_slot;  // the alloca
};

LoopFrame begin_loop(IRBuilder& b, Function* fn, const std::string& tag,
                     Value* bound) {
  Module* m = b.module();
  auto& ctx = m->types();
  Instruction* slot =
      b.create_alloca(ctx.int64_ty(), nullptr, tag + ".slot");
  b.create_store(m->get_i64(0), slot);
  BasicBlock* header = fn->add_block(tag + ".header");
  BasicBlock* body = fn->add_block(tag + ".body");
  BasicBlock* exit = fn->add_block(tag + ".exit");
  b.create_br(header);

  b.set_insert_point(header);
  Value* i = b.create_load(slot, tag + ".i");
  Value* cond = b.create_icmp(ICmpPred::SLT, i, bound, tag + ".cond");
  b.create_cond_br(cond, body, exit);

  b.set_insert_point(body);
  Value* i_body = b.create_load(slot, tag + ".iv");
  LoopFrame frame{header, body, exit, i_body, slot};
  return frame;
}

void end_loop(IRBuilder& b, const LoopFrame& frame) {
  Module* m = b.module();
  Value* next = b.create_add(frame.counter, m->get_i64(1));
  b.create_store(next, frame.counter_slot);
  b.create_br(frame.header);
  b.set_insert_point(frame.exit);
}

}  // namespace

std::unique_ptr<Module> build_kernel_module(const KernelSpec& spec) {
  auto module = std::make_unique<Module>(spec.name);
  auto& ctx = module->types();
  Type* f64 = ctx.double_ty();
  Type* i64 = ctx.int64_ty();
  Type* f64p = ctx.pointer_to(f64);
  Type* i64p = ctx.pointer_to(i64);

  // Runtime declarations.
  Function* sqrt_fn = nullptr;
  Function* exp_fn = nullptr;
  if (spec.math_calls > 0) {
    sqrt_fn = module->add_function(ctx.function(f64, {f64}), "sqrt");
    sqrt_fn->set_attribute("pure", "true");
    exp_fn = module->add_function(ctx.function(f64, {f64}), "exp");
    exp_fn->set_attribute("pure", "true");
  }
  Function* barrier_fn = nullptr;
  if (spec.barrier_calls > 0) {
    barrier_fn =
        module->add_function(ctx.function(ctx.void_ty(), {}), "omp_barrier");
  }

  // Outlined kernel signature: (i64 n, double* a0..ak-1 [, i64* idx]).
  std::vector<Type*> params{i64};
  for (int a = 0; a < spec.num_arrays; ++a) params.push_back(f64p);
  const bool needs_index = spec.indirect_gather || spec.pointer_chase;
  if (needs_index) params.push_back(i64p);
  Function* kernel = module->add_function(ctx.function(ctx.void_ty(), params),
                                          outlined_name(spec.name));
  kernel->set_attribute("omp.outlined", "true");
  kernel->set_arg_name(0, "n");
  for (int a = 0; a < spec.num_arrays; ++a)
    kernel->set_arg_name(1 + a, "a" + std::to_string(a));
  if (needs_index)
    kernel->set_arg_name(1 + spec.num_arrays, "idx");

  IRBuilder b(module.get());
  BasicBlock* entry = kernel->add_block("entry");
  b.set_insert_point(entry);

  Value* n = kernel->arg(0);
  std::vector<Value*> arrays;
  for (int a = 0; a < spec.num_arrays; ++a)
    arrays.push_back(kernel->arg(1 + a));
  Value* index_array =
      needs_index ? kernel->arg(1 + spec.num_arrays) : nullptr;

  // Pointer-chase cursor lives in a slot (loop-carried dependence).
  Instruction* chase_slot = nullptr;
  if (spec.pointer_chase) {
    chase_slot = b.create_alloca(i64, nullptr, "cursor.slot");
    b.create_store(module->get_i64(0), chase_slot);
  }

  // Loop nest: outer over %n, then constant-extent inner loops.
  std::vector<LoopFrame> frames;
  frames.push_back(begin_loop(b, kernel, "outer", n));
  for (std::size_t d = 0; d < spec.inner_extents.size(); ++d) {
    frames.push_back(begin_loop(b, kernel, "inner" + std::to_string(d),
                                module->get_i64(spec.inner_extents[d])));
  }

  // ---- Innermost body -------------------------------------------------------
  // Linear element index: combine the loop counters.
  Value* lin = frames[0].counter;
  for (std::size_t d = 1; d < frames.size(); ++d) {
    Value* scaled =
        b.create_mul(lin, module->get_i64(spec.inner_extents[d - 1]), "");
    lin = b.create_add(scaled, frames[d].counter, "lin");
  }

  Value* address_index = lin;
  if (spec.indirect_gather) {
    Value* slot_ptr = b.create_gep(index_array, {lin}, "idx.ptr");
    address_index = b.create_load(slot_ptr, "idx.val");
  } else if (spec.pointer_chase) {
    Value* cursor = b.create_load(chase_slot, "cursor");
    Value* slot_ptr = b.create_gep(index_array, {cursor}, "next.ptr");
    Value* next = b.create_load(slot_ptr, "next");
    b.create_store(next, chase_slot);
    address_index = next;
  }

  // Primary load (+ stencil neighbours).
  Value* src = arrays.size() > 1 ? arrays[1] : arrays[0];
  Value* ptr = b.create_gep(src, {address_index}, "p");
  Value* v = b.create_load(ptr, "v");
  if (spec.stencil_offset > 0) {
    Value* up_idx =
        b.create_add(address_index, module->get_i64(spec.stencil_offset));
    Value* dn_idx =
        b.create_sub(address_index, module->get_i64(spec.stencil_offset));
    Value* up = b.create_load(b.create_gep(src, {up_idx}), "vup");
    Value* dn = b.create_load(b.create_gep(src, {dn_idx}), "vdn");
    v = b.create_fadd(v, b.create_fadd(up, dn), "vsum");
    v = b.create_fmul(v, module->get_double(1.0 / 3.0), "vavg");
  }
  // Additional array streams contribute one load each.
  for (std::size_t a = 2; a < arrays.size(); ++a) {
    Value* extra =
        b.create_load(b.create_gep(arrays[a], {address_index}), "x");
    v = b.create_fadd(v, extra);
  }

  // Unrollable micro-loop of flops (exposes micro-structure to the
  // augmented graphs: small extents fully unroll under loop-unroll).
  if (spec.unrollable_extent > 0) {
    Instruction* acc_slot = b.create_alloca(f64, nullptr, "uacc.slot");
    b.create_store(v, acc_slot);
    LoopFrame micro = begin_loop(b, kernel, "micro",
                                 module->get_i64(spec.unrollable_extent));
    Value* acc = b.create_load(acc_slot, "uacc");
    Value* scaled = b.create_fmul(acc, module->get_double(0.97), "");
    Value* bumped = b.create_fadd(scaled, module->get_double(0.011), "");
    b.create_store(bumped, acc_slot);
    end_loop(b, micro);
    v = b.create_load(acc_slot, "uacc.final");
  }

  // Flop chain.
  for (int f = 0; f < spec.flop_chain; ++f) {
    v = b.create_fmul(v, module->get_double(1.0 + 0.01 * (f + 1)), "");
    if (f % 2 == 0) v = b.create_fadd(v, module->get_double(0.5), "");
  }
  for (int c = 0; c < spec.math_calls; ++c) {
    Function* callee = (c % 2 == 0) ? sqrt_fn : exp_fn;
    v = b.create_call(callee, {v}, "m");
  }

  if (spec.data_dependent_branch) {
    // Frontend-style diamond through a temporary slot.
    Instruction* tmp = b.create_alloca(f64, nullptr, "branch.slot");
    Value* cond = b.create_fcmp(ir::FCmpPred::OGT, v,
                                module->get_double(0.5), "bc");
    BasicBlock* then_bb = kernel->add_block("then");
    BasicBlock* else_bb = kernel->add_block("else");
    BasicBlock* join_bb = kernel->add_block("join");
    b.create_cond_br(cond, then_bb, else_bb);
    b.set_insert_point(then_bb);
    b.create_store(b.create_fmul(v, module->get_double(1.1)), tmp);
    b.create_br(join_bb);
    b.set_insert_point(else_bb);
    b.create_store(b.create_fadd(v, module->get_double(0.1)), tmp);
    b.create_br(join_bb);
    b.set_insert_point(join_bb);
    v = b.create_load(tmp, "merged");
  }

  // Result store (+ optional shared atomic reduction).
  Value* out_ptr = b.create_gep(arrays[0], {lin}, "out");
  b.create_store(v, out_ptr);
  if (spec.atomic_reduction) {
    Value* cell = b.create_gep(arrays[0], {module->get_i64(0)}, "red");
    b.create_atomic_rmw(ir::AtomicOp::FAdd, cell, v, "old");
  }

  // Close inner loops (innermost first).
  for (std::size_t d = frames.size(); d-- > 1;) end_loop(b, frames[d]);

  // Barriers at the end of each outer iteration (CLOMP-style overhead).
  for (int s = 0; s < spec.barrier_calls; ++s)
    b.create_call(barrier_fn, {});

  end_loop(b, frames[0]);
  b.create_ret();

  // Host wrapper calling the outlined kernel (gives the graph a call flow).
  Function* host = module->add_function(ctx.function(ctx.void_ty(), {i64}),
                                        spec.name + ".host");
  host->set_arg_name(0, "n");
  BasicBlock* host_entry = host->add_block("entry");
  b.set_insert_point(host_entry);
  std::vector<Value*> args{host->arg(0)};
  for (int a = 0; a < spec.num_arrays; ++a) {
    ir::GlobalVariable* g = module->add_global(
        ctx.array_of(f64, 4096), spec.name + ".buf" + std::to_string(a));
    args.push_back(b.create_gep(g, {module->get_i64(0), module->get_i64(0)},
                                "g" + std::to_string(a)));
  }
  if (needs_index) {
    ir::GlobalVariable* g =
        module->add_global(ctx.array_of(i64, 4096), spec.name + ".index");
    args.push_back(
        b.create_gep(g, {module->get_i64(0), module->get_i64(0)}, "gi"));
  }
  b.create_call(kernel, args);
  b.create_ret();

  return module;
}

}  // namespace irgnn::workloads
