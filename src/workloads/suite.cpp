#include "workloads/suite.h"

#include <map>

namespace irgnn::workloads {

namespace {

using sim::MemoryStream;
using sim::Phase;
using sim::WorkloadTraits;

constexpr std::uint64_t MB = 1024ull * 1024;
constexpr std::uint64_t KB = 1024ull;

/// Small fluent helper so each region definition stays compact.
struct RegionBuilder {
  RegionSpec spec;

  explicit RegionBuilder(std::string name, std::string family) {
    spec.name = name;
    spec.family = std::move(family);
    spec.kernel.name = name;
    for (char& c : spec.kernel.name)
      if (c == ' ' || c == '+') c = '_';
    spec.traits.region = std::move(name);
  }

  RegionBuilder& stream(std::int64_t stride, std::uint64_t footprint,
                        double irregularity = 0.0, double reuse = 0.0,
                        double writes = 0.0, bool shared = false) {
    MemoryStream s;
    s.stride_bytes = stride;
    s.footprint_bytes = footprint;
    s.irregularity = irregularity;
    s.temporal_reuse = reuse;
    s.write_fraction = writes;
    s.shared = shared;
    phase().streams.push_back(s);
    return *this;
  }

  RegionBuilder& flops(double per_access) {
    phase().flops_per_access = per_access;
    return *this;
  }
  RegionBuilder& accesses(std::uint64_t per_call) {
    phase().accesses_per_call = per_call;
    return *this;
  }
  RegionBuilder& branchy(double irregularity) {
    phase().branch_irregularity = irregularity;
    return *this;
  }
  RegionBuilder& sync(double cost_per_access) {
    phase().sync_cost = cost_per_access;
    return *this;
  }
  RegionBuilder& false_share(double f) {
    phase().false_sharing = f;
    return *this;
  }
  RegionBuilder& dynamic_behaviour(double variability) {
    spec.traits.call_variability = variability;
    return *this;
  }
  RegionBuilder& serial(double fraction) {
    spec.traits.serial_fraction = fraction;
    return *this;
  }
  RegionBuilder& size2(double scale) {
    spec.traits.size2_scale = scale;
    return *this;
  }

  // Kernel (IR) knobs.
  RegionBuilder& loops(std::vector<std::int64_t> inner_extents) {
    spec.kernel.inner_extents = std::move(inner_extents);
    return *this;
  }
  RegionBuilder& arrays(int n) {
    spec.kernel.num_arrays = n;
    return *this;
  }
  RegionBuilder& flop_chain(int n) {
    spec.kernel.flop_chain = n;
    return *this;
  }
  RegionBuilder& gather() {
    spec.kernel.indirect_gather = true;
    return *this;
  }
  RegionBuilder& chase() {
    spec.kernel.pointer_chase = true;
    return *this;
  }
  RegionBuilder& atomic() {
    spec.kernel.atomic_reduction = true;
    return *this;
  }
  RegionBuilder& math(int calls) {
    spec.kernel.math_calls = calls;
    return *this;
  }
  RegionBuilder& barriers(int calls) {
    spec.kernel.barrier_calls = calls;
    return *this;
  }
  RegionBuilder& branch_ir() {
    spec.kernel.data_dependent_branch = true;
    return *this;
  }
  RegionBuilder& stencil(std::int64_t offset) {
    spec.kernel.stencil_offset = offset;
    return *this;
  }
  RegionBuilder& micro_loop(std::int64_t extent) {
    spec.kernel.unrollable_extent = extent;
    return *this;
  }

  RegionSpec build() { return spec; }

 private:
  Phase& phase() {
    if (spec.traits.phases.empty()) spec.traits.phases.emplace_back();
    return spec.traits.phases.back();
  }
};

using RB = RegionBuilder;

/// NAS BT/SP solver sweeps: private 3D stencil streams; the sweep direction
/// sets the dominant stride (x: unit, y: plane row, z: page-sized).
RegionSpec nas_sweep(const std::string& name, std::int64_t stride,
                     std::uint64_t fp, double flops, int flop_chain,
                     std::int64_t micro) {
  return RB(name, "nas")
      .stream(stride, fp, 0.0, 0.05, 0.3)
      .stream(8, fp / 2, 0.0, 0.1, 0.0)
      .flops(flops)
      .accesses(3'000'000)
      .loops({64, 32})
      .arrays(3)
      .flop_chain(flop_chain)
      .stencil(stride / 8 > 0 ? stride / 8 : 1)
      .micro_loop(micro)
      .size2(4.0)
      .build();
}

RegionSpec clomp_region(const std::string& name, double sync_cost,
                        std::uint64_t accesses, int barrier_calls,
                        std::int64_t micro, double variability = 0.0) {
  return RB(name, "clomp")
      .stream(8, 1 * MB, 0.0, 0.3, 0.2)
      .flops(1.0)
      .accesses(accesses)
      .sync(sync_cost)
      .dynamic_behaviour(variability)
      .serial(0.05)
      .loops({16})
      .arrays(1)
      .flop_chain(1)
      .barriers(barrier_calls)
      .micro_loop(micro)
      .size2(2.0)
      .build();
}

RegionSpec lulesh_region(const std::string& name, std::uint64_t fp,
                         double irregularity, double flops, int flop_chain,
                         bool use_atomic, std::int64_t micro) {
  RB rb(name, "lulesh");
  rb.stream(8, fp, irregularity, 0.1, 0.35)
      .stream(24, fp / 2, irregularity / 2, 0.05, 0.0)
      .flops(flops)
      .accesses(2'500'000)
      .loops({48})
      .arrays(4)
      .flop_chain(flop_chain)
      .gather()
      .micro_loop(micro)
      .size2(4.0);
  if (use_atomic) rb.atomic();
  return rb.build();
}

std::vector<RegionSpec> make_suite() {
  std::vector<RegionSpec> suite;

  // ---------------- NAS ----------------------------------------------------
  suite.push_back(nas_sweep("bt xsolve", 8, 96 * MB, 8.0, 6, 0));
  suite.push_back(nas_sweep("bt ysolve", 512, 96 * MB, 8.0, 6, 4));
  suite.push_back(nas_sweep("bt zsolve", 4 * KB, 96 * MB, 8.0, 6, 6));
  suite.push_back(RB("bt rhs", "nas")
                      .stream(8, 128 * MB, 0.0, 0.05, 0.25)
                      .stream(512, 64 * MB)
                      .flops(10.0)
                      .accesses(4'000'000)
                      .dynamic_behaviour(0.25)
                      .loops({64, 16})
                      .arrays(5)
                      .flop_chain(8)
                      .stencil(64)
                      .build());
  suite.push_back(nas_sweep("sp xsolve", 8, 160 * MB, 4.0, 3, 0));
  suite.push_back(nas_sweep("sp ysolve", 1 * KB, 160 * MB, 4.0, 3, 4));
  suite.push_back(nas_sweep("sp zsolve", 8 * KB, 160 * MB, 4.0, 3, 6));
  suite.push_back(RB("sp rhs", "nas")
                      .stream(8, 192 * MB, 0.0, 0.05, 0.3)
                      .stream(8, 96 * MB, 0.0, 0.0, 0.0, true)
                      .flops(5.0)
                      .accesses(5'000'000)
                      .loops({64, 16})
                      .arrays(6)
                      .flop_chain(4)
                      .stencil(16)
                      .build());
  suite.push_back(RB("lu rhs", "nas")
                      .stream(8, 80 * MB, 0.05, 0.1, 0.3)
                      .flops(7.0)
                      .accesses(2'500'000)
                      .loops({32, 16})
                      .arrays(4)
                      .flop_chain(6)
                      .stencil(32)
                      .build());
  suite.push_back(RB("lu ssor", "nas")
                      .stream(8, 80 * MB, 0.1, 0.15, 0.4)
                      .flops(6.0)
                      .accesses(2'000'000)
                      .sync(0.02)
                      .loops({32, 16})
                      .arrays(3)
                      .flop_chain(5)
                      .stencil(32)
                      .barriers(1)
                      .build());
  suite.push_back(RB("cg 405", "nas")
                      .stream(8, 24 * MB, 0.55, 0.1, 0.1)
                      .stream(8, 12 * MB, 0.3, 0.3, 0.0, true)
                      .flops(2.0)
                      .accesses(2'000'000)
                      .dynamic_behaviour(0.3)
                      .loops({128})
                      .arrays(3)
                      .gather()
                      .flop_chain(2)
                      .build());
  suite.push_back(RB("cg 551", "nas")
                      .stream(8, 48 * MB, 0.6, 0.05, 0.1)
                      .stream(8, 24 * MB, 0.35, 0.25, 0.0, true)
                      .flops(2.0)
                      .accesses(3'000'000)
                      .dynamic_behaviour(0.3)
                      .loops({128})
                      .arrays(4)
                      .gather()
                      .flop_chain(2)
                      .micro_loop(4)
                      .build());
  suite.push_back(RB("ft step 1", "nas")
                      .stream(2 * KB, 128 * MB, 0.0, 0.0, 0.5, true)
                      .flops(3.0)
                      .accesses(4'000'000)
                      .loops({64})
                      .arrays(2)
                      .flop_chain(3)
                      .micro_loop(4)
                      .build());
  suite.push_back(RB("ft step 2", "nas")
                      .stream(16 * KB, 128 * MB, 0.0, 0.0, 0.5, true)
                      .flops(3.0)
                      .accesses(4'000'000)
                      .dynamic_behaviour(0.35)
                      .loops({64})
                      .arrays(2)
                      .flop_chain(3)
                      .micro_loop(6)
                      .build());
  suite.push_back(RB("ft step 3", "nas")
                      .stream(128 * KB, 128 * MB, 0.0, 0.0, 0.5, true)
                      .flops(3.0)
                      .accesses(4'000'000)
                      .loops({64})
                      .arrays(2)
                      .flop_chain(3)
                      .micro_loop(8)
                      .build());
  suite.push_back(RB("is rank", "nas")
                      .stream(8, 32 * MB, 0.8, 0.05, 0.6, true)
                      .flops(0.5)
                      .accesses(2'000'000)
                      .false_share(0.25)
                      .dynamic_behaviour(0.3)
                      .loops({256})
                      .arrays(2)
                      .gather()
                      .atomic()
                      .flop_chain(1)
                      .build());
  suite.push_back(RB("mg residual", "nas")
                      .stream(8, 192 * MB, 0.0, 0.05, 0.3)
                      .stream(4 * KB, 96 * MB)
                      .flops(3.0)
                      .accesses(4'000'000)
                      .dynamic_behaviour(0.55)
                      .loops({64, 8})
                      .arrays(3)
                      .flop_chain(3)
                      .stencil(512)
                      .build());
  suite.push_back(RB("mg psinv", "nas")
                      .stream(8, 160 * MB, 0.0, 0.05, 0.3)
                      .stream(4 * KB, 80 * MB)
                      .flops(4.0)
                      .accesses(3'500'000)
                      .dynamic_behaviour(0.35)
                      .loops({64, 8})
                      .arrays(3)
                      .flop_chain(4)
                      .stencil(512)
                      .micro_loop(4)
                      .build());

  // ---------------- Rodinia -------------------------------------------------
  suite.push_back(RB("bfs 135", "rodinia")
                      .stream(8, 16 * MB, 0.85, 0.05, 0.2, true)
                      .flops(0.5)
                      .accesses(1'200'000)
                      .branchy(0.6)
                      .dynamic_behaviour(0.5)
                      .loops({64})
                      .arrays(2)
                      .gather()
                      .branch_ir()
                      .flop_chain(1)
                      .build());
  suite.push_back(RB("bfs 157", "rodinia")
                      .stream(8, 24 * MB, 0.8, 0.05, 0.25, true)
                      .flops(0.5)
                      .accesses(1'500'000)
                      .branchy(0.55)
                      .dynamic_behaviour(0.45)
                      .loops({64})
                      .arrays(3)
                      .gather()
                      .branch_ir()
                      .flop_chain(1)
                      .micro_loop(4)
                      .build());
  suite.push_back(RB("b+tree 86", "rodinia")
                      .stream(8, 6 * MB, 0.9, 0.2, 0.0, true)
                      .flops(0.5)
                      .accesses(800'000)
                      .branchy(0.5)
                      .loops({32})
                      .arrays(2)
                      .chase()
                      .branch_ir()
                      .flop_chain(1)
                      .build());
  suite.push_back(RB("b+tree 96", "rodinia")
                      .stream(8, 10 * MB, 0.9, 0.15, 0.0, true)
                      .flops(0.5)
                      .accesses(1'000'000)
                      .branchy(0.5)
                      .loops({32})
                      .arrays(2)
                      .chase()
                      .branch_ir()
                      .flop_chain(2)
                      .build());
  suite.push_back(RB("cfd 211", "rodinia")
                      .stream(8, 96 * MB, 0.45, 0.1, 0.3)
                      .stream(8, 48 * MB, 0.2, 0.1, 0.0, true)
                      .flops(6.0)
                      .accesses(3'000'000)
                      .dynamic_behaviour(0.3)
                      .loops({64})
                      .arrays(4)
                      .gather()
                      .flop_chain(5)
                      .build());
  suite.push_back(RB("cfd 347", "rodinia")
                      .stream(8, 128 * MB, 0.5, 0.1, 0.35)
                      .stream(8, 64 * MB, 0.25, 0.1, 0.0, true)
                      .flops(7.0)
                      .accesses(3'500'000)
                      .dynamic_behaviour(0.35)
                      .loops({64})
                      .arrays(5)
                      .gather()
                      .flop_chain(6)
                      .micro_loop(4)
                      .build());
  suite.push_back(RB("Hotspot", "rodinia")
                      .stream(8, 48 * MB, 0.0, 0.2, 0.3)
                      .flops(6.0)
                      .accesses(2'000'000)
                      .loops({128})
                      .arrays(3)
                      .stencil(128)
                      .flop_chain(5)
                      .build());
  suite.push_back(RB("hotspot3D", "rodinia")
                      .stream(8, 120 * MB, 0.0, 0.1, 0.3)
                      .stream(2 * KB, 60 * MB)
                      .flops(7.0)
                      .accesses(3'000'000)
                      .loops({64, 8})
                      .arrays(4)
                      .stencil(256)
                      .flop_chain(6)
                      .build());
  suite.push_back(RB("kmeans", "rodinia")
                      .stream(8, 64 * MB, 0.0, 0.05, 0.1)
                      .stream(8, 256 * KB, 0.1, 0.7, 0.3, true)
                      .flops(4.0)
                      .accesses(2'500'000)
                      .dynamic_behaviour(0.5)
                      .false_share(0.15)
                      .loops({64, 8})
                      .arrays(3)
                      .flop_chain(3)
                      .atomic()
                      .build());
  suite.push_back(RB("lud", "rodinia")
                      .stream(8, 32 * MB, 0.05, 0.3, 0.3)
                      .flops(5.0)
                      .accesses(1'500'000)
                      .dynamic_behaviour(0.3)
                      .sync(0.03)
                      .loops({48, 16})
                      .arrays(2)
                      .flop_chain(4)
                      .barriers(1)
                      .build());
  suite.push_back(RB("nn", "rodinia")
                      .stream(8, 3 * MB, 0.0, 0.1, 0.1)
                      .flops(3.0)
                      .accesses(400'000)
                      .dynamic_behaviour(0.25)
                      .serial(0.06)
                      .loops({32})
                      .arrays(2)
                      .flop_chain(3)
                      .math(1)
                      .build());
  suite.push_back(RB("needle 116", "rodinia")
                      .stream(8, 24 * MB, 0.05, 0.15, 0.35)
                      .flops(2.0)
                      .accesses(1'200'000)
                      .sync(0.08)
                      .dynamic_behaviour(0.25)
                      .loops({32})
                      .arrays(3)
                      .stencil(32)
                      .barriers(2)
                      .flop_chain(2)
                      .build());
  suite.push_back(RB("needle 176", "rodinia")
                      .stream(8, 32 * MB, 0.05, 0.15, 0.35)
                      .flops(2.0)
                      .accesses(1'500'000)
                      .sync(0.07)
                      .dynamic_behaviour(0.22)
                      .loops({32})
                      .arrays(3)
                      .stencil(32)
                      .barriers(2)
                      .flop_chain(3)
                      .micro_loop(4)
                      .build());
  suite.push_back(RB("pathfinder", "rodinia")
                      .stream(8, 8 * MB, 0.0, 0.25, 0.4)
                      .flops(1.5)
                      .accesses(800'000)
                      .sync(0.06)
                      .loops({64})
                      .arrays(2)
                      .stencil(1)
                      .barriers(1)
                      .flop_chain(1)
                      .build());
  suite.push_back(RB("streamcluster 451", "rodinia")
                      .stream(8, 96 * MB, 0.0, 0.0, 0.05, true)
                      .flops(4.0)
                      .accesses(4'000'000)
                      .dynamic_behaviour(0.35)
                      .loops({128})
                      .arrays(3)
                      .flop_chain(4)
                      .math(1)
                      .build());
  suite.push_back(RB("streamcluster 539", "rodinia")
                      .stream(8, 128 * MB, 0.0, 0.0, 0.05, true)
                      .flops(3.0)
                      .accesses(5'000'000)
                      .dynamic_behaviour(0.3)
                      .loops({128})
                      .arrays(3)
                      .flop_chain(3)
                      .math(1)
                      .micro_loop(4)
                      .build());

  // ---------------- Misc (PARSEC / proxy apps) -----------------------------
  suite.push_back(RB("blackscholes", "misc")
                      .stream(8, 8 * MB, 0.0, 0.1, 0.15)
                      .flops(30.0)
                      .accesses(1'500'000)
                      .loops({64})
                      .arrays(3)
                      .flop_chain(12)
                      .math(4)
                      .build());
  suite.push_back(RB("HACCmk", "misc")
                      .stream(8, 12 * MB, 0.0, 0.3, 0.1)
                      .flops(40.0)
                      .accesses(2'000'000)
                      .loops({64, 32})
                      .arrays(4)
                      .flop_chain(14)
                      .math(2)
                      .micro_loop(8)
                      .build());
  suite.push_back(RB("quicksilver", "misc")
                      .stream(8, 48 * MB, 0.5, 0.1, 0.2)
                      .flops(5.0)
                      .accesses(2'000'000)
                      .branchy(0.6)
                      .dynamic_behaviour(0.3)
                      .loops({64})
                      .arrays(4)
                      .gather()
                      .branch_ir()
                      .flop_chain(4)
                      .math(1)
                      .build());

  // ---------------- LULESH -------------------------------------------------
  suite.push_back(lulesh_region("lulesh 549", 64 * MB, 0.2, 9.0, 7, false, 0));
  suite.push_back(lulesh_region("lulesh 810", 80 * MB, 0.25, 10.0, 8, false, 4));
  suite.push_back(lulesh_region("lulesh 1037", 96 * MB, 0.3, 11.0, 8, true, 0));
  suite.push_back(
      lulesh_region("lulesh 1538", 112 * MB, 0.35, 12.0, 9, false, 6));
  suite.push_back(lulesh_region("lulesh 2051", 64 * MB, 0.2, 8.0, 6, true, 4));
  suite.push_back(
      lulesh_region("lulesh 2058", 128 * MB, 0.3, 13.0, 10, false, 0));
  suite.push_back(lulesh_region("lulesh 2104", 48 * MB, 0.15, 7.0, 5, false, 8));
  suite.push_back(lulesh_region("lulesh 2269", 96 * MB, 0.4, 9.0, 7, true, 6));

  // ---------------- CLOMP --------------------------------------------------
  suite.push_back(clomp_region("clomp 805", 0.6, 150'000, 2, 0));
  suite.push_back(clomp_region("clomp 988", 0.9, 120'000, 3, 4, 0.25));
  suite.push_back(clomp_region("clomp 1007", 1.2, 100'000, 3, 0));
  suite.push_back(clomp_region("clomp 1017", 0.8, 140'000, 2, 6));
  suite.push_back(clomp_region("clomp 1036", 1.5, 90'000, 4, 0));
  suite.push_back(clomp_region("clomp 1046", 1.1, 110'000, 3, 8, 0.2));
  suite.push_back(clomp_region("clomp 1056", 0.7, 160'000, 2, 4));
  suite.push_back(clomp_region("clomp 1075", 1.3, 95'000, 4, 6));
  suite.push_back(clomp_region("clomp 1085", 1.0, 125'000, 3, 8));
  suite.push_back(clomp_region("clomp 1095", 1.4, 85'000, 4, 4));
  suite.push_back(clomp_region("clomp 1105", 0.9, 130'000, 2, 0));

  return suite;
}

}  // namespace

const std::vector<RegionSpec>& benchmark_suite() {
  static const std::vector<RegionSpec> suite = make_suite();
  return suite;
}

const RegionSpec* find_region(const std::string& name) {
  for (const RegionSpec& spec : benchmark_suite())
    if (spec.name == name) return &spec;
  return nullptr;
}

std::unique_ptr<ir::Module> build_region_module(const RegionSpec& spec) {
  return build_kernel_module(spec.kernel);
}

std::vector<sim::WorkloadTraits> suite_traits() {
  std::vector<sim::WorkloadTraits> out;
  for (const RegionSpec& spec : benchmark_suite())
    out.push_back(spec.traits);
  return out;
}

std::vector<std::string> input_size_subset() {
  return {"sp xsolve",  "mg psinv",   "ft step 3",  "cg 551",
          "ft step 2",  "is rank",    "sp zsolve",  "ft step 1",
          "streamcluster 539", "sp ysolve", "lu rhs", "lu ssor",
          "streamcluster 451", "bt xsolve", "cg 405", "sp rhs",
          "bt ysolve",  "mg residual", "bt zsolve", "bt rhs"};
}

}  // namespace irgnn::workloads
