#include "graph/fingerprint.h"

#include "support/rng.h"

namespace irgnn::graph {

namespace {

/// Domain-separation constants so that e.g. a graph with one extra node can
/// never collide with the same graph plus one extra edge by construction of
/// the fold order alone.
constexpr std::uint64_t kFingerprintSeed = 0x17C3A95EED5E47EULL;
constexpr std::uint64_t kNodeSection = 0x6E0DE5ULL;
constexpr std::uint64_t kEdgeSection = 0x0ED6E5ULL;

}  // namespace

std::uint64_t fingerprint(const ProgramGraph& graph) {
  std::uint64_t h = hash_combine64(kFingerprintSeed, graph.nodes.size());
  h = hash_combine64(h, kNodeSection);
  for (const Node& node : graph.nodes) {
    const std::uint64_t packed =
        (static_cast<std::uint64_t>(node.kind) << 32) ^
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(node.feature));
    h = hash_combine64(h, packed);
  }
  h = hash_combine64(h, kEdgeSection);
  h = hash_combine64(h, graph.edges.size());
  for (const Edge& edge : graph.edges) {
    const std::uint64_t endpoints =
        (static_cast<std::uint64_t>(static_cast<std::uint32_t>(edge.src))
         << 32) |
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(edge.dst));
    const std::uint64_t tags =
        (static_cast<std::uint64_t>(edge.kind) << 32) ^
        static_cast<std::uint64_t>(static_cast<std::uint32_t>(edge.position));
    h = hash_combine64(h, endpoints);
    h = hash_combine64(h, tags);
  }
  return h;
}

}  // namespace irgnn::graph
