#include "graph/region_extractor.h"

#include <unordered_set>

#include "ir/instruction.h"

namespace irgnn::graph {

std::vector<std::string> find_omp_regions(const ir::Module& module) {
  std::vector<std::string> out;
  for (ir::Function* fn : module.functions())
    if (fn->is_omp_outlined()) out.push_back(fn->name());
  return out;
}

std::unique_ptr<ir::Module> extract_region(const ir::Module& module,
                                           const std::string& function_name) {
  if (!module.get_function(function_name)) return nullptr;

  // Clone the whole module, then erase functions outside the region's
  // transitive call closure. (Globals are retained: they are the shared
  // arrays the region operates on and are part of its signature in spirit.)
  std::unique_ptr<ir::Module> clone = module.clone();
  clone->set_name(module.name() + ":" + function_name);

  std::unordered_set<ir::Function*> keep;
  std::vector<ir::Function*> work{clone->get_function(function_name)};
  while (!work.empty()) {
    ir::Function* fn = work.back();
    work.pop_back();
    if (!keep.insert(fn).second) continue;
    for (ir::BasicBlock* block : fn->blocks())
      for (ir::Instruction* inst : block->instructions())
        if (inst->opcode() == ir::Opcode::Call)
          if (ir::Function* callee = inst->called_function())
            work.push_back(callee);
  }

  for (ir::Function* fn : clone->functions())
    if (!keep.count(fn)) clone->erase_function(fn);
  return clone;
}

}  // namespace irgnn::graph
