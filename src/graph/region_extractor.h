// Region extraction (step B of the paper's workflow): OpenMP parallel
// regions are outlined functions in the IR; this is the `llvm-extract`
// equivalent that pulls one such function — plus everything it transitively
// references — into a standalone module.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace irgnn::graph {

/// Names of all OpenMP-outlined region functions in the module.
std::vector<std::string> find_omp_regions(const ir::Module& module);

/// Extracts `function_name` (with its transitive callees and globals) into a
/// fresh module. Returns nullptr if the function does not exist.
std::unique_ptr<ir::Module> extract_region(const ir::Module& module,
                                           const std::string& function_name);

}  // namespace irgnn::graph
