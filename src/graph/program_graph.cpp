#include "graph/program_graph.h"

#include <cstdio>
#include <sstream>

namespace irgnn::graph {

namespace {
constexpr int kNumOpcodes = 34;   // Opcode enum cardinality
constexpr int kNumTypeKinds = 11;  // Type::Kind cardinality
}  // namespace

namespace {
constexpr int kMagnitudeBuckets = 8;
}

int vocabulary_size() {
  return kNumOpcodes + 1 + kNumTypeKinds + kNumTypeKinds * kMagnitudeBuckets;
}
int instruction_feature(int opcode_ordinal) { return opcode_ordinal; }
int external_function_feature() { return kNumOpcodes; }
int variable_feature(int type_kind_ordinal) {
  return kNumOpcodes + 1 + type_kind_ordinal;
}
int constant_feature(int type_kind_ordinal, int magnitude_bucket) {
  return kNumOpcodes + 1 + kNumTypeKinds +
         type_kind_ordinal * kMagnitudeBuckets + magnitude_bucket;
}
int magnitude_bucket(double absolute_value) {
  int bucket = 0;
  double v = absolute_value;
  while (v >= 2.0 && bucket < kMagnitudeBuckets - 1) {
    v /= 16.0;  // buckets at 2, 32, 512, 8K, 128K, 2M, 32M
    ++bucket;
  }
  return bucket;
}

std::size_t ProgramGraph::count_edges(EdgeKind kind) const {
  std::size_t n = 0;
  for (const Edge& e : edges) n += (e.kind == kind);
  return n;
}

std::string ProgramGraph::to_dot() const {
  std::ostringstream os;
  os << "digraph \"" << name << "\" {\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const char* shape = nodes[i].kind == NodeKind::Instruction ? "box"
                        : nodes[i].kind == NodeKind::Variable  ? "ellipse"
                                                               : "diamond";
    os << "  n" << i << " [label=\"" << nodes[i].text << "\", shape=" << shape
       << "];\n";
  }
  for (const Edge& e : edges) {
    const char* color = e.kind == EdgeKind::Control ? "blue"
                        : e.kind == EdgeKind::Data  ? "black"
                                                    : "red";
    os << "  n" << e.src << " -> n" << e.dst << " [color=" << color
       << ", label=" << e.position << "];\n";
  }
  os << "}\n";
  return os.str();
}

std::string ProgramGraph::to_text() const {
  std::ostringstream os;
  os << "graph " << name << " " << nodes.size() << " " << edges.size() << "\n";
  for (const Node& n : nodes)
    os << "n " << static_cast<int>(n.kind) << " " << n.feature << " " << n.text
       << "\n";
  for (const Edge& e : edges)
    os << "e " << e.src << " " << e.dst << " " << static_cast<int>(e.kind)
       << " " << e.position << "\n";
  return os.str();
}

bool ProgramGraph::from_text(const std::string& text, ProgramGraph* out) {
  std::istringstream is(text);
  std::string tag;
  std::size_t num_nodes = 0;
  std::size_t num_edges = 0;
  if (!(is >> tag) || tag != "graph") return false;
  if (!(is >> out->name >> num_nodes >> num_edges)) return false;
  out->nodes.clear();
  out->edges.clear();
  for (std::size_t i = 0; i < num_nodes; ++i) {
    int kind = 0;
    Node n;
    if (!(is >> tag >> kind >> n.feature >> n.text) || tag != "n")
      return false;
    n.kind = static_cast<NodeKind>(kind);
    out->nodes.push_back(std::move(n));
  }
  for (std::size_t i = 0; i < num_edges; ++i) {
    int kind = 0;
    Edge e;
    if (!(is >> tag >> e.src >> e.dst >> kind >> e.position) || tag != "e")
      return false;
    e.kind = static_cast<EdgeKind>(kind);
    out->edges.push_back(e);
  }
  return true;
}

}  // namespace irgnn::graph
