// Canonical 64-bit structural fingerprint of a ProgramGraph.
//
// The fingerprint folds every node's (kind, feature) pair and every edge's
// (src, dst, kind, position) tuple — in graph order, which the builder makes
// canonical — through splitmix64 mixing. Two graphs that the GNN cannot
// tell apart (same node features, same typed edges) fingerprint equal; any
// structural perturbation (a node's kind or vocabulary feature, an edge
// endpoint, relation or operand position, an added/removed node or edge)
// changes the value. Debug-only fields (the graph's name, node text) do not
// participate: they never reach the model, so they must not split cache
// entries for identical queries.
//
// The serving layer keys its prediction cache on this value: iterative flag
// exploration produces many structurally identical variants of a region
// (different flag sequences frequently optimize to the same IR), and those
// collapse to one cache entry. Collisions are possible in principle
// (64 bits) but tests/graph_test.cpp smokes the workload suite and its flag
// variants for distinctness.
#pragma once

#include <cstdint>

#include "graph/program_graph.h"

namespace irgnn::graph {

/// Structural hash over node kinds/features and typed edges. Deterministic
/// across platforms and runs; performs no heap allocation.
std::uint64_t fingerprint(const ProgramGraph& graph);

}  // namespace irgnn::graph
