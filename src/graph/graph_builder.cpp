#include "graph/graph_builder.h"

#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "ir/instruction.h"

namespace irgnn::graph {

namespace {

using ir::BasicBlock;
using ir::Function;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

class Builder {
 public:
  Builder(const ir::Module& module, const GraphBuilderOptions& options)
      : module_(module), options_(options) {}

  ProgramGraph run() {
    graph_.name = module_.name();
    // Instruction nodes (and "external" stand-ins for declarations) first;
    // call edges need every function's entry resolvable.
    for (Function* fn : module_.functions()) {
      if (fn->is_declaration()) {
        external_[fn] = add_node(NodeKind::Instruction,
                                 external_function_feature(),
                                 "external:" + fn->name());
        continue;
      }
      for (BasicBlock* block : fn->blocks())
        for (Instruction* inst : block->instructions())
          inst_node_[inst] =
              add_node(NodeKind::Instruction,
                       instruction_feature(static_cast<int>(inst->opcode())),
                       ir::opcode_name(inst->opcode()));
    }
    for (Function* fn : module_.functions()) {
      if (fn->is_declaration()) continue;
      if (options_.control_edges) add_control_edges(*fn);
      if (options_.data_edges) add_data_edges(*fn);
      if (options_.call_edges) add_call_edges(*fn);
    }
    return std::move(graph_);
  }

 private:
  int add_node(NodeKind kind, int feature, std::string text) {
    graph_.nodes.push_back(Node{kind, feature, std::move(text)});
    return static_cast<int>(graph_.nodes.size()) - 1;
  }

  void add_edge(int src, int dst, EdgeKind kind, int position) {
    graph_.edges.push_back(Edge{src, dst, kind, position});
  }

  void add_control_edges(const Function& fn) {
    for (BasicBlock* block : fn.blocks()) {
      auto insts = block->instructions();
      for (std::size_t i = 0; i + 1 < insts.size(); ++i)
        add_edge(inst_node_.at(insts[i]), inst_node_.at(insts[i + 1]),
                 EdgeKind::Control, 0);
      Instruction* term = block->terminator();
      if (!term) continue;
      for (unsigned s = 0; s < term->num_successors(); ++s) {
        BasicBlock* succ = term->successor(s);
        if (!succ->empty())
          add_edge(inst_node_.at(term), inst_node_.at(succ->front()),
                   EdgeKind::Control, static_cast<int>(s));
      }
    }
  }

  /// Variable node for an SSA value (created lazily; one per value).
  int variable_node(Value* v) {
    auto it = var_node_.find(v);
    if (it != var_node_.end()) return it->second;
    int type_kind = static_cast<int>(v->type()->kind());
    int node = add_node(NodeKind::Variable, variable_feature(type_kind),
                        "var:" + v->type()->to_string());
    var_node_[v] = node;
    return node;
  }

  int constant_node(Value* v) {
    // One node per distinct constant (constants are interned per-module).
    auto it = var_node_.find(v);
    if (it != var_node_.end()) return it->second;
    int type_kind = static_cast<int>(v->type()->kind());
    double magnitude = 0.0;
    if (v->value_kind() == Value::Kind::ConstantInt)
      magnitude = std::abs(
          static_cast<double>(static_cast<ir::ConstantInt*>(v)->value()));
    if (v->value_kind() == Value::Kind::ConstantFP)
      magnitude = std::abs(static_cast<ir::ConstantFP*>(v)->value());
    int node = add_node(
        NodeKind::Constant,
        constant_feature(type_kind, magnitude_bucket(magnitude)),
        "const:" + v->type()->to_string());
    var_node_[v] = node;
    return node;
  }

  void add_data_edges(const Function& fn) {
    for (BasicBlock* block : fn.blocks()) {
      for (Instruction* inst : block->instructions()) {
        int inst_node = inst_node_.at(inst);
        // Definition edge: instruction -> its result variable.
        if (!inst->type()->is_void() && inst->has_uses())
          add_edge(inst_node, variable_node(inst), EdgeKind::Data, 0);
        // Use edges: operand variable/constant -> instruction, with the
        // operand position.
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          Value* op = inst->operand(i);
          if (!op) continue;
          switch (op->value_kind()) {
            case Value::Kind::Instruction:
            case Value::Kind::Argument:
            case Value::Kind::GlobalVariable:
              add_edge(variable_node(op), inst_node, EdgeKind::Data,
                       static_cast<int>(i));
              break;
            case Value::Kind::ConstantInt:
            case Value::Kind::ConstantFP:
            case Value::Kind::ConstantUndef:
              add_edge(constant_node(op), inst_node, EdgeKind::Data,
                       static_cast<int>(i));
              break;
            case Value::Kind::BasicBlock:
            case Value::Kind::Function:
              break;  // control/call flow, not data
          }
        }
      }
    }
  }

  void add_call_edges(const Function& fn) {
    for (BasicBlock* block : fn.blocks()) {
      for (Instruction* inst : block->instructions()) {
        if (inst->opcode() != Opcode::Call) continue;
        Function* callee = inst->called_function();
        if (!callee) continue;
        int call_node = inst_node_.at(inst);
        if (callee->is_declaration()) {
          int ext = external_.at(callee);
          add_edge(call_node, ext, EdgeKind::Call, 0);
          add_edge(ext, call_node, EdgeKind::Call, 1);
          continue;
        }
        BasicBlock* entry = callee->entry();
        if (entry && !entry->empty())
          add_edge(call_node, inst_node_.at(entry->front()), EdgeKind::Call,
                   0);
        // Return edges: each ret in the callee back to the call site.
        for (BasicBlock* cb : callee->blocks()) {
          Instruction* term = cb->terminator();
          if (term && term->opcode() == Opcode::Ret)
            add_edge(inst_node_.at(term), call_node, EdgeKind::Call, 1);
        }
      }
    }
  }

  const ir::Module& module_;
  GraphBuilderOptions options_;
  ProgramGraph graph_;
  std::unordered_map<const Instruction*, int> inst_node_;
  std::unordered_map<const Value*, int> var_node_;
  std::unordered_map<const Function*, int> external_;
};

}  // namespace

ProgramGraph build_graph(const ir::Module& module,
                         const GraphBuilderOptions& options) {
  Builder builder(module, options);
  return builder.run();
}

}  // namespace irgnn::graph
