// ProGraML-style program graphs (Cummins et al., ICML 2021), rebuilt over
// our mini-IR. Nodes represent instructions, SSA variables and constants;
// typed edges carry the three flows the paper's GNN consumes:
//   control — instruction-to-instruction execution order,
//   data    — def-to-use through variable/constant nodes (with operand
//             positions),
//   call    — call-site to callee entry, and callee returns back to the
//             call site.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace irgnn::graph {

enum class NodeKind { Instruction, Variable, Constant };
enum class EdgeKind { Control, Data, Call };

inline constexpr int kNumEdgeKinds = 3;

struct Node {
  NodeKind kind;
  int feature;       // vocabulary index (see vocabulary_size())
  std::string text;  // opcode / type string, for dumps and debugging
};

struct Edge {
  std::int32_t src;
  std::int32_t dst;
  EdgeKind kind;
  std::int32_t position;  // operand index (data), successor index (control)
};

struct ProgramGraph {
  std::string name;
  std::vector<Node> nodes;
  std::vector<Edge> edges;

  std::size_t num_nodes() const { return nodes.size(); }
  std::size_t num_edges() const { return edges.size(); }
  std::size_t count_edges(EdgeKind kind) const;

  /// Graphviz rendering (for the docs and the quickstart example).
  std::string to_dot() const;

  /// Compact text form: one node/edge per line. Parsed by from_text.
  std::string to_text() const;
  static bool from_text(const std::string& text, ProgramGraph* out);
};

/// Size of the node-feature vocabulary: instruction opcodes (+1 for
/// "external"), then variable-by-type, then constant-by-(type, magnitude)
/// buckets. Constants carry a coarse log2-magnitude bucket (0..7) so that
/// structurally identical kernels with different extents/strides remain
/// distinguishable — mirroring ProGraML's textual constant embedding.
int vocabulary_size();

/// Feature index helpers (exposed for tests).
int instruction_feature(int opcode_ordinal);
int external_function_feature();
int variable_feature(int type_kind_ordinal);
int constant_feature(int type_kind_ordinal, int magnitude_bucket = 0);
/// Coarse log2 bucket of a constant's magnitude, in [0, 7].
int magnitude_bucket(double absolute_value);

}  // namespace irgnn::graph
