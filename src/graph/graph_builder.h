// Builds a ProgramGraph from an ir::Module (ProGraML construction, Sec. II-A
// of the paper).
#pragma once

#include "graph/program_graph.h"
#include "ir/module.h"

namespace irgnn::graph {

struct GraphBuilderOptions {
  bool control_edges = true;
  bool data_edges = true;
  bool call_edges = true;
};

/// Builds the whole-module graph.
ProgramGraph build_graph(const ir::Module& module,
                         const GraphBuilderOptions& options = {});

}  // namespace irgnn::graph
