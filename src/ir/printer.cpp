#include "ir/printer.h"

#include <cassert>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ir/instruction.h"

namespace irgnn::ir {

namespace {

/// Per-function value naming. Guarantees unique, parseable names even when
/// the in-memory IR has duplicate or empty names.
class Namer {
 public:
  explicit Namer(const Function& fn) {
    for (unsigned i = 0; i < fn.num_args(); ++i) assign(fn.arg(i));
    for (BasicBlock* block : fn.blocks()) {
      assign(block);
      for (Instruction* inst : block->instructions())
        if (!inst->type()->is_void()) assign(inst);
    }
  }

  std::string name_of(const Value* v) const {
    auto it = names_.find(v);
    assert(it != names_.end() && "value was not named");
    return it->second;
  }

 private:
  void assign(const Value* v) {
    std::string base = v->name().empty() ? "v" : v->name();
    std::string candidate = base;
    unsigned suffix = 0;
    while (taken_.count(candidate))
      candidate = base + "." + std::to_string(++suffix);
    taken_.insert(candidate);
    names_[v] = candidate;
  }

  std::unordered_map<const Value*, std::string> names_;
  std::unordered_set<std::string> taken_;
};

std::string fp_literal(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  std::string s = buf;
  // Ensure the literal is visibly floating-point so the parser can type it.
  if (s.find('.') == std::string::npos && s.find('e') == std::string::npos &&
      s.find("inf") == std::string::npos && s.find("nan") == std::string::npos)
    s += ".0";
  return s;
}

/// Renders an operand reference without its type.
std::string operand_ref(const Value* v, const Namer& namer) {
  switch (v->value_kind()) {
    case Value::Kind::ConstantInt:
      return std::to_string(static_cast<const ConstantInt*>(v)->value());
    case Value::Kind::ConstantFP:
      return fp_literal(static_cast<const ConstantFP*>(v)->value());
    case Value::Kind::ConstantUndef:
      return "undef";
    case Value::Kind::GlobalVariable:
    case Value::Kind::Function:
      return "@" + v->name();
    case Value::Kind::BasicBlock:
      return "%" + namer.name_of(v);
    default:
      return "%" + namer.name_of(v);
  }
}

/// Renders "type ref", e.g. "i64 %x" or "double 1.5".
std::string typed_ref(const Value* v, const Namer& namer) {
  return v->type()->to_string() + " " + operand_ref(v, namer);
}

void print_instruction(std::ostringstream& os, const Instruction* inst,
                       const Namer& namer) {
  os << "  ";
  if (!inst->type()->is_void()) os << "%" << namer.name_of(inst) << " = ";

  switch (inst->opcode()) {
    case Opcode::Ret:
      os << "ret ";
      if (inst->num_operands() == 0)
        os << "void";
      else
        os << typed_ref(inst->operand(0), namer);
      break;
    case Opcode::Br:
      if (inst->is_conditional_branch()) {
        os << "br " << typed_ref(inst->operand(0), namer) << ", label "
           << operand_ref(inst->operand(1), namer) << ", label "
           << operand_ref(inst->operand(2), namer);
      } else {
        os << "br label " << operand_ref(inst->operand(0), namer);
      }
      break;
    case Opcode::ICmp:
      os << "icmp " << icmp_pred_name(inst->icmp_pred()) << " "
         << typed_ref(inst->operand(0), namer) << ", "
         << operand_ref(inst->operand(1), namer);
      break;
    case Opcode::FCmp:
      os << "fcmp " << fcmp_pred_name(inst->fcmp_pred()) << " "
         << typed_ref(inst->operand(0), namer) << ", "
         << operand_ref(inst->operand(1), namer);
      break;
    case Opcode::Alloca:
      os << "alloca " << inst->allocated_type()->to_string() << ", "
         << typed_ref(inst->operand(0), namer);
      break;
    case Opcode::Load:
      os << "load " << inst->type()->to_string() << ", "
         << typed_ref(inst->operand(0), namer);
      break;
    case Opcode::Store:
      os << "store " << typed_ref(inst->operand(0), namer) << ", "
         << typed_ref(inst->operand(1), namer);
      break;
    case Opcode::GetElementPtr: {
      os << "getelementptr " << inst->gep_source_type()->to_string() << ", "
         << typed_ref(inst->operand(0), namer);
      for (unsigned i = 1; i < inst->num_operands(); ++i)
        os << ", " << typed_ref(inst->operand(i), namer);
      break;
    }
    case Opcode::AtomicRMW:
      os << "atomicrmw " << atomic_op_name(inst->atomic_op()) << " "
         << typed_ref(inst->operand(0), namer) << ", "
         << typed_ref(inst->operand(1), namer);
      break;
    case Opcode::Trunc:
    case Opcode::ZExt:
    case Opcode::SExt:
    case Opcode::SIToFP:
    case Opcode::FPToSI:
    case Opcode::FPExt:
    case Opcode::FPTrunc:
    case Opcode::Bitcast:
      os << opcode_name(inst->opcode()) << " "
         << typed_ref(inst->operand(0), namer) << " to "
         << inst->type()->to_string();
      break;
    case Opcode::Phi: {
      os << "phi " << inst->type()->to_string() << " ";
      for (unsigned i = 0; i < inst->phi_num_incoming(); ++i) {
        if (i) os << ", ";
        os << "[ " << operand_ref(inst->phi_incoming_value(i), namer) << ", "
           << operand_ref(inst->phi_incoming_block(i), namer) << " ]";
      }
      break;
    }
    case Opcode::Select:
      os << "select " << typed_ref(inst->operand(0), namer) << ", "
         << typed_ref(inst->operand(1), namer) << ", "
         << typed_ref(inst->operand(2), namer);
      break;
    case Opcode::Call: {
      os << "call " << inst->type()->to_string() << " "
         << operand_ref(inst->operand(0), namer) << "(";
      for (unsigned i = 0; i < inst->call_num_args(); ++i) {
        if (i) os << ", ";
        os << typed_ref(inst->call_arg(i), namer);
      }
      os << ")";
      break;
    }
    default:  // binary integer / fp arithmetic
      os << opcode_name(inst->opcode()) << " "
         << typed_ref(inst->operand(0), namer) << ", "
         << operand_ref(inst->operand(1), namer);
      break;
  }
  os << "\n";
}

void print_attrs(std::ostringstream& os, const Function& fn) {
  for (const auto& [k, v] : fn.attributes())
    os << " \"" << k << "\"=\"" << v << "\"";
}

void print_function_impl(std::ostringstream& os, const Function& fn) {
  if (fn.is_declaration()) {
    os << "declare " << fn.return_type()->to_string() << " @" << fn.name()
       << "(";
    for (unsigned i = 0; i < fn.num_args(); ++i)
      os << (i ? ", " : "") << fn.arg(i)->type()->to_string();
    os << ")";
    print_attrs(os, fn);
    os << "\n";
    return;
  }
  Namer namer(fn);
  os << "define " << fn.return_type()->to_string() << " @" << fn.name() << "(";
  for (unsigned i = 0; i < fn.num_args(); ++i) {
    if (i) os << ", ";
    os << fn.arg(i)->type()->to_string() << " %" << namer.name_of(fn.arg(i));
  }
  os << ")";
  print_attrs(os, fn);
  os << " {\n";
  for (BasicBlock* block : fn.blocks()) {
    os << namer.name_of(block) << ":\n";
    for (Instruction* inst : block->instructions())
      print_instruction(os, inst, namer);
  }
  os << "}\n";
}

}  // namespace

std::string print_function(const Function& function) {
  std::ostringstream os;
  print_function_impl(os, function);
  return os.str();
}

std::string print_module(const Module& module) {
  std::ostringstream os;
  os << "; ModuleID = '" << module.name() << "'\n";
  for (GlobalVariable* g : module.globals())
    os << "@" << g->name() << " = global " << g->contained_type()->to_string()
       << "\n";
  for (Function* fn : module.functions()) {
    os << "\n";
    print_function_impl(os, *fn);
  }
  return os.str();
}

}  // namespace irgnn::ir
