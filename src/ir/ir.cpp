// Implementation of the core IR classes (Value, Instruction, BasicBlock,
// Function, Module) including the structural module cloner.
#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"
#include "ir/value.h"

namespace irgnn::ir {

// --------------------------------------------------------------------------
// Value
// --------------------------------------------------------------------------

void Value::replace_all_uses_with(Value* replacement) {
  assert(replacement != this && "self-replacement");
  // set_operand mutates uses_, so iterate over a snapshot.
  std::vector<Use> snapshot = uses_;
  for (const Use& use : snapshot) use.user->set_operand(use.index, replacement);
}

// --------------------------------------------------------------------------
// Instruction
// --------------------------------------------------------------------------

const char* opcode_name(Opcode op) {
  switch (op) {
    case Opcode::Ret: return "ret";
    case Opcode::Br: return "br";
    case Opcode::Add: return "add";
    case Opcode::Sub: return "sub";
    case Opcode::Mul: return "mul";
    case Opcode::SDiv: return "sdiv";
    case Opcode::SRem: return "srem";
    case Opcode::And: return "and";
    case Opcode::Or: return "or";
    case Opcode::Xor: return "xor";
    case Opcode::Shl: return "shl";
    case Opcode::LShr: return "lshr";
    case Opcode::AShr: return "ashr";
    case Opcode::FAdd: return "fadd";
    case Opcode::FSub: return "fsub";
    case Opcode::FMul: return "fmul";
    case Opcode::FDiv: return "fdiv";
    case Opcode::ICmp: return "icmp";
    case Opcode::FCmp: return "fcmp";
    case Opcode::Alloca: return "alloca";
    case Opcode::Load: return "load";
    case Opcode::Store: return "store";
    case Opcode::GetElementPtr: return "getelementptr";
    case Opcode::AtomicRMW: return "atomicrmw";
    case Opcode::Trunc: return "trunc";
    case Opcode::ZExt: return "zext";
    case Opcode::SExt: return "sext";
    case Opcode::SIToFP: return "sitofp";
    case Opcode::FPToSI: return "fptosi";
    case Opcode::FPExt: return "fpext";
    case Opcode::FPTrunc: return "fptrunc";
    case Opcode::Bitcast: return "bitcast";
    case Opcode::Phi: return "phi";
    case Opcode::Select: return "select";
    case Opcode::Call: return "call";
  }
  return "<invalid>";
}

const char* icmp_pred_name(ICmpPred p) {
  switch (p) {
    case ICmpPred::EQ: return "eq";
    case ICmpPred::NE: return "ne";
    case ICmpPred::SLT: return "slt";
    case ICmpPred::SLE: return "sle";
    case ICmpPred::SGT: return "sgt";
    case ICmpPred::SGE: return "sge";
  }
  return "<invalid>";
}

const char* fcmp_pred_name(FCmpPred p) {
  switch (p) {
    case FCmpPred::OEQ: return "oeq";
    case FCmpPred::ONE: return "one";
    case FCmpPred::OLT: return "olt";
    case FCmpPred::OLE: return "ole";
    case FCmpPred::OGT: return "ogt";
    case FCmpPred::OGE: return "oge";
  }
  return "<invalid>";
}

const char* atomic_op_name(AtomicOp op) {
  switch (op) {
    case AtomicOp::Add: return "add";
    case AtomicOp::FAdd: return "fadd";
    case AtomicOp::Min: return "min";
    case AtomicOp::Max: return "max";
  }
  return "<invalid>";
}

Instruction::Instruction(Opcode opcode, Type* type,
                         std::vector<Value*> operands, std::string name)
    : Value(Kind::Instruction, type, std::move(name)), opcode_(opcode) {
  operands_.reserve(operands.size());
  for (Value* v : operands) add_operand(v);
}

Instruction::~Instruction() { drop_all_references(); }

void Instruction::set_operand(unsigned i, Value* v) {
  assert(i < operands_.size());
  Value* old = operands_[i];
  if (old == v) return;
  if (old) {
    auto& uses = old->uses_;
    for (std::size_t k = 0; k < uses.size(); ++k) {
      if (uses[k].user == this && uses[k].index == i) {
        uses[k] = uses.back();
        uses.pop_back();
        break;
      }
    }
  }
  operands_[i] = v;
  if (v) v->uses_.push_back(Use{this, i});
}

void Instruction::add_operand(Value* v) {
  operands_.push_back(nullptr);
  set_operand(static_cast<unsigned>(operands_.size() - 1), v);
}

void Instruction::drop_all_references() {
  for (unsigned i = 0; i < operands_.size(); ++i) set_operand(i, nullptr);
  operands_.clear();
}

bool Instruction::has_side_effects() const {
  switch (opcode_) {
    case Opcode::Store:
    case Opcode::AtomicRMW:
    case Opcode::Ret:
    case Opcode::Br:
      return true;
    case Opcode::Call: {
      Function* callee = called_function();
      return callee == nullptr || !callee->is_pure();
    }
    default:
      return false;
  }
}

Type* Instruction::gep_source_type() const {
  assert(opcode_ == Opcode::GetElementPtr);
  return operand(0)->type()->pointee();
}

BasicBlock* Instruction::successor(unsigned i) const {
  assert(opcode_ == Opcode::Br);
  unsigned base = (num_operands() == 3) ? 1 : 0;
  return static_cast<BasicBlock*>(operand(base + i));
}

unsigned Instruction::num_successors() const {
  if (opcode_ != Opcode::Br) return 0;
  return num_operands() == 3 ? 2 : 1;
}

BasicBlock* Instruction::phi_incoming_block(unsigned i) const {
  assert(opcode_ == Opcode::Phi);
  return static_cast<BasicBlock*>(operand(2 * i + 1));
}

void Instruction::phi_add_incoming(Value* value, BasicBlock* block) {
  assert(opcode_ == Opcode::Phi);
  add_operand(value);
  add_operand(block);
}

void Instruction::phi_remove_incoming(unsigned i) {
  assert(opcode_ == Opcode::Phi && 2 * i + 1 < num_operands());
  // Clear use entries for the removed slots, then compact by shifting the
  // remaining operands down two positions.
  for (unsigned k = 2 * i; k + 2 < num_operands(); ++k)
    set_operand(k, operands_[k + 2]);
  set_operand(num_operands() - 2, nullptr);
  set_operand(num_operands() - 1, nullptr);
  operands_.pop_back();
  operands_.pop_back();
}

int Instruction::phi_incoming_index(const BasicBlock* block) const {
  assert(opcode_ == Opcode::Phi);
  for (unsigned i = 0; i < phi_num_incoming(); ++i)
    if (phi_incoming_block(i) == block) return static_cast<int>(i);
  return -1;
}

Function* Instruction::called_function() const {
  assert(opcode_ == Opcode::Call);
  Value* callee = operand(0);
  return callee->value_kind() == Kind::Function
             ? static_cast<Function*>(callee)
             : nullptr;
}

// --------------------------------------------------------------------------
// BasicBlock
// --------------------------------------------------------------------------

Instruction* BasicBlock::push_back(std::unique_ptr<Instruction> inst) {
  inst->parent_ = this;
  insts_.push_back(std::move(inst));
  return insts_.back().get();
}

Instruction* BasicBlock::insert_before(Instruction* pos,
                                       std::unique_ptr<Instruction> inst) {
  inst->parent_ = this;
  if (pos == nullptr) {
    insts_.push_back(std::move(inst));
    return insts_.back().get();
  }
  int idx = index_of(pos);
  assert(idx >= 0 && "insert position not in this block");
  auto it = insts_.begin() + idx;
  Instruction* raw = inst.get();
  insts_.insert(it, std::move(inst));
  return raw;
}

Instruction* BasicBlock::push_front(std::unique_ptr<Instruction> inst) {
  inst->parent_ = this;
  Instruction* raw = inst.get();
  insts_.insert(insts_.begin(), std::move(inst));
  return raw;
}

void BasicBlock::erase(Instruction* inst) {
  assert(!inst->has_uses() && "erasing an instruction that still has uses");
  int idx = index_of(inst);
  assert(idx >= 0 && "instruction not in this block");
  insts_.erase(insts_.begin() + idx);
}

std::unique_ptr<Instruction> BasicBlock::remove(Instruction* inst) {
  int idx = index_of(inst);
  assert(idx >= 0 && "instruction not in this block");
  std::unique_ptr<Instruction> owned = std::move(insts_[idx]);
  insts_.erase(insts_.begin() + idx);
  owned->parent_ = nullptr;
  return owned;
}

int BasicBlock::index_of(const Instruction* inst) const {
  for (std::size_t i = 0; i < insts_.size(); ++i)
    if (insts_[i].get() == inst) return static_cast<int>(i);
  return -1;
}

std::vector<BasicBlock*> BasicBlock::successors() const {
  std::vector<BasicBlock*> out;
  Instruction* term = terminator();
  if (!term) return out;
  for (unsigned i = 0; i < term->num_successors(); ++i)
    out.push_back(term->successor(i));
  return out;
}

std::vector<BasicBlock*> BasicBlock::predecessors() const {
  std::vector<BasicBlock*> out;
  for (const Use& use : uses()) {
    Instruction* user = use.user;
    if (!user->is_terminator()) continue;  // phi references are not edges
    BasicBlock* pred = user->parent();
    if (std::find(out.begin(), out.end(), pred) == out.end())
      out.push_back(pred);
  }
  return out;
}

std::vector<Instruction*> BasicBlock::phis() const {
  std::vector<Instruction*> out;
  for (const auto& inst : insts_) {
    if (inst->opcode() != Opcode::Phi) break;
    out.push_back(inst.get());
  }
  return out;
}

Instruction* BasicBlock::first_non_phi() const {
  for (const auto& inst : insts_)
    if (inst->opcode() != Opcode::Phi) return inst.get();
  return nullptr;
}

// --------------------------------------------------------------------------
// Function
// --------------------------------------------------------------------------

Function::Function(Type* fn_type, std::string name, Module* parent)
    : Value(Kind::Function, fn_type, std::move(name)),
      fn_type_(fn_type),
      parent_(parent) {
  const auto& params = fn_type->params();
  for (unsigned i = 0; i < params.size(); ++i) {
    args_.push_back(std::make_unique<Argument>(
        params[i], "arg" + std::to_string(i), i));
  }
}

BasicBlock* Function::add_block(const std::string& name) {
  auto* label = parent_ ? parent_->types().label_ty() : nullptr;
  blocks_.push_back(std::make_unique<BasicBlock>(label, name, this));
  return blocks_.back().get();
}

BasicBlock* Function::add_block_after(BasicBlock* after,
                                      const std::string& name) {
  auto* label = parent_ ? parent_->types().label_ty() : nullptr;
  auto block = std::make_unique<BasicBlock>(label, name, this);
  BasicBlock* raw = block.get();
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].get() == after) {
      blocks_.insert(blocks_.begin() + i + 1, std::move(block));
      return raw;
    }
  }
  blocks_.push_back(std::move(block));
  return raw;
}

void Function::erase_block(BasicBlock* block) {
  // Drop instruction references first so intra-block cycles (phis) unlink.
  for (Instruction* inst : block->instructions()) inst->drop_all_references();
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].get() == block) {
      blocks_.erase(blocks_.begin() + i);
      return;
    }
  }
  assert(false && "block not in this function");
}

void Function::move_block_after(BasicBlock* block, BasicBlock* after) {
  std::unique_ptr<BasicBlock> owned;
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].get() == block) {
      owned = std::move(blocks_[i]);
      blocks_.erase(blocks_.begin() + i);
      break;
    }
  }
  assert(owned && "block not in this function");
  for (std::size_t i = 0; i < blocks_.size(); ++i) {
    if (blocks_[i].get() == after) {
      blocks_.insert(blocks_.begin() + i + 1, std::move(owned));
      return;
    }
  }
  blocks_.push_back(std::move(owned));
}

std::size_t Function::instruction_count() const {
  std::size_t n = 0;
  for (const auto& block : blocks_) n += block->size();
  return n;
}

// --------------------------------------------------------------------------
// Module
// --------------------------------------------------------------------------

Module::~Module() {
  for (const auto& fn : functions_)
    for (BasicBlock* block : fn->blocks())
      for (Instruction* inst : block->instructions())
        inst->drop_all_references();
}

Function* Module::add_function(Type* fn_type, const std::string& name) {
  functions_.push_back(std::make_unique<Function>(fn_type, name, this));
  return functions_.back().get();
}

Function* Module::get_function(const std::string& name) const {
  for (const auto& fn : functions_)
    if (fn->name() == name) return fn.get();
  return nullptr;
}

void Module::erase_function(Function* fn) {
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].get() == fn) {
      for (BasicBlock* block : fn->blocks())
        for (Instruction* inst : block->instructions())
          inst->drop_all_references();
      functions_.erase(functions_.begin() + i);
      return;
    }
  }
  assert(false && "function not in this module");
}

GlobalVariable* Module::add_global(Type* contained, const std::string& name) {
  globals_.push_back(std::make_unique<GlobalVariable>(
      ctx_.pointer_to(contained), contained, name));
  return globals_.back().get();
}

GlobalVariable* Module::get_global(const std::string& name) const {
  for (const auto& g : globals_)
    if (g->name() == name) return g.get();
  return nullptr;
}

ConstantInt* Module::get_int(Type* type, std::int64_t value) {
  auto key = std::make_pair(type, value);
  auto it = int_constants_.find(key);
  if (it != int_constants_.end()) return it->second.get();
  auto c = std::make_unique<ConstantInt>(type, value);
  ConstantInt* raw = c.get();
  int_constants_.emplace(key, std::move(c));
  return raw;
}

ConstantInt* Module::get_i1(bool value) {
  return get_int(ctx_.int1_ty(), value ? 1 : 0);
}
ConstantInt* Module::get_i32(std::int32_t value) {
  return get_int(ctx_.int32_ty(), value);
}
ConstantInt* Module::get_i64(std::int64_t value) {
  return get_int(ctx_.int64_ty(), value);
}

ConstantFP* Module::get_fp(Type* type, double value) {
  auto key = std::make_pair(type, value);
  auto it = fp_constants_.find(key);
  if (it != fp_constants_.end()) return it->second.get();
  auto c = std::make_unique<ConstantFP>(type, value);
  ConstantFP* raw = c.get();
  fp_constants_.emplace(key, std::move(c));
  return raw;
}

ConstantFP* Module::get_double(double value) {
  return get_fp(ctx_.double_ty(), value);
}

ConstantUndef* Module::get_undef(Type* type) {
  auto it = undef_constants_.find(type);
  if (it != undef_constants_.end()) return it->second.get();
  auto c = std::make_unique<ConstantUndef>(type);
  ConstantUndef* raw = c.get();
  undef_constants_.emplace(type, std::move(c));
  return raw;
}

std::size_t Module::instruction_count() const {
  std::size_t n = 0;
  for (const auto& fn : functions_) n += fn->instruction_count();
  return n;
}

namespace {

/// Translates a type from one context into another structurally.
Type* map_type(TypeContext& dst, const Type* src) {
  switch (src->kind()) {
    case Type::Kind::Void: return dst.void_ty();
    case Type::Kind::Int1: return dst.int1_ty();
    case Type::Kind::Int8: return dst.int8_ty();
    case Type::Kind::Int32: return dst.int32_ty();
    case Type::Kind::Int64: return dst.int64_ty();
    case Type::Kind::Float: return dst.float_ty();
    case Type::Kind::Double: return dst.double_ty();
    case Type::Kind::Label: return dst.label_ty();
    case Type::Kind::Pointer: return dst.pointer_to(map_type(dst, src->pointee()));
    case Type::Kind::Array:
      return dst.array_of(map_type(dst, src->element()), src->array_length());
    case Type::Kind::Function: {
      std::vector<Type*> params;
      for (Type* p : src->params()) params.push_back(map_type(dst, p));
      return dst.function(map_type(dst, src->return_type()), std::move(params));
    }
  }
  return nullptr;
}

}  // namespace

std::unique_ptr<Module> Module::clone() const {
  auto out = std::make_unique<Module>(name_);
  std::unordered_map<const Value*, Value*> vmap;

  for (const auto& g : globals_) {
    GlobalVariable* ng =
        out->add_global(map_type(out->types(), g->contained_type()), g->name());
    vmap[g.get()] = ng;
  }

  // Create all function shells first so call operands can be remapped.
  for (const auto& fn : functions_) {
    Function* nf = out->add_function(
        map_type(out->types(), fn->function_type()), fn->name());
    for (const auto& [k, v] : fn->attributes()) nf->set_attribute(k, v);
    for (unsigned i = 0; i < fn->num_args(); ++i) {
      nf->set_arg_name(i, fn->arg(i)->name());
      vmap[fn->arg(i)] = nf->arg(i);
    }
    vmap[fn.get()] = nf;
  }

  auto map_value = [&](Value* v) -> Value* {
    if (v == nullptr) return nullptr;
    auto it = vmap.find(v);
    if (it != vmap.end()) return it->second;
    // Constants are interned per-module; translate on demand.
    switch (v->value_kind()) {
      case Value::Kind::ConstantInt: {
        auto* c = static_cast<ConstantInt*>(v);
        return out->get_int(map_type(out->types(), c->type()), c->value());
      }
      case Value::Kind::ConstantFP: {
        auto* c = static_cast<ConstantFP*>(v);
        return out->get_fp(map_type(out->types(), c->type()), c->value());
      }
      case Value::Kind::ConstantUndef:
        return out->get_undef(map_type(out->types(), v->type()));
      default:
        assert(false && "unmapped value in clone");
        return nullptr;
    }
  };

  for (const auto& fn : functions_) {
    Function* nf = static_cast<Function*>(vmap.at(fn.get()));
    // Pass 1: create blocks and instruction shells (operands unfilled) so
    // forward references (phis, back edges) resolve.
    for (BasicBlock* block : fn->blocks()) {
      BasicBlock* nb = nf->add_block(block->name());
      vmap[block] = nb;
      for (Instruction* inst : block->instructions()) {
        auto ni = std::make_unique<Instruction>(
            inst->opcode(), map_type(out->types(), inst->type()),
            std::vector<Value*>{}, inst->name());
        if (inst->opcode() == Opcode::ICmp) ni->set_icmp_pred(inst->icmp_pred());
        if (inst->opcode() == Opcode::FCmp) ni->set_fcmp_pred(inst->fcmp_pred());
        if (inst->opcode() == Opcode::Alloca)
          ni->set_allocated_type(map_type(out->types(), inst->allocated_type()));
        if (inst->opcode() == Opcode::AtomicRMW)
          ni->set_atomic_op(inst->atomic_op());
        vmap[inst] = nb->push_back(std::move(ni));
      }
    }
    // Pass 2: fill operands.
    for (BasicBlock* block : fn->blocks()) {
      for (Instruction* inst : block->instructions()) {
        auto* ni = static_cast<Instruction*>(vmap.at(inst));
        for (unsigned i = 0; i < inst->num_operands(); ++i)
          ni->add_operand(map_value(inst->operand(i)));
      }
    }
  }
  return out;
}

}  // namespace irgnn::ir
