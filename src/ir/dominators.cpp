#include "ir/dominators.h"
#include <algorithm>

#include <cassert>

#include "ir/cfg.h"

namespace irgnn::ir {

DominatorTree::DominatorTree(const Function& fn) {
  rpo_ = reverse_post_order(fn);
  for (std::size_t i = 0; i < rpo_.size(); ++i) index_[rpo_[i]] = i;
  idom_.assign(rpo_.size(), -1);
  if (rpo_.empty()) return;
  idom_[0] = 0;  // entry's idom is itself (sentinel)

  auto intersect = [&](int a, int b) {
    while (a != b) {
      while (a > b) a = idom_[a];
      while (b > a) b = idom_[b];
    }
    return a;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 1; i < rpo_.size(); ++i) {
      int new_idom = -1;
      for (BasicBlock* pred : rpo_[i]->predecessors()) {
        auto it = index_.find(pred);
        if (it == index_.end()) continue;  // unreachable predecessor
        int p = static_cast<int>(it->second);
        if (idom_[p] == -1) continue;  // not yet processed
        new_idom = (new_idom == -1) ? p : intersect(new_idom, p);
      }
      if (new_idom != -1 && idom_[i] != new_idom) {
        idom_[i] = new_idom;
        changed = true;
      }
    }
  }

  // Dominator-tree children.
  for (std::size_t i = 1; i < rpo_.size(); ++i)
    if (idom_[i] >= 0) children_[rpo_[idom_[i]]].push_back(rpo_[i]);

  // Dominance frontiers (Cooper et al.).
  for (BasicBlock* block : rpo_) {
    std::vector<BasicBlock*> preds;
    for (BasicBlock* pred : block->predecessors())
      if (index_.count(pred)) preds.push_back(pred);
    if (preds.size() < 2) continue;
    std::size_t b = index_.at(block);
    for (BasicBlock* pred : preds) {
      int runner = static_cast<int>(index_.at(pred));
      while (runner != idom_[b]) {
        auto& df = frontiers_[rpo_[runner]];
        if (std::find(df.begin(), df.end(), block) == df.end())
          df.push_back(block);
        runner = idom_[runner];
      }
    }
  }
}

BasicBlock* DominatorTree::idom(BasicBlock* block) const {
  auto it = index_.find(block);
  if (it == index_.end() || it->second == 0) return nullptr;
  return rpo_[idom_[it->second]];
}

bool DominatorTree::dominates(BasicBlock* a, BasicBlock* b) const {
  auto ia = index_.find(a);
  auto ib = index_.find(b);
  if (ia == index_.end() || ib == index_.end()) return false;
  std::size_t target = ia->second;
  int cur = static_cast<int>(ib->second);
  while (true) {
    if (static_cast<std::size_t>(cur) == target) return true;
    if (cur == 0) return false;
    cur = idom_[cur];
  }
}

bool DominatorTree::dominates(const Instruction* def, const Instruction* user,
                              unsigned operand_index) const {
  BasicBlock* def_block = def->parent();
  BasicBlock* use_block = user->parent();
  if (user->opcode() == Opcode::Phi) {
    // A phi use must be dominated at the end of the incoming block.
    unsigned incoming = operand_index / 2;
    use_block = user->phi_incoming_block(incoming);
    return dominates(def_block, use_block);
  }
  if (def_block != use_block)
    return dominates(def_block, use_block);
  return def_block->index_of(def) < use_block->index_of(user);
}

const std::vector<BasicBlock*>& DominatorTree::frontier(
    BasicBlock* block) const {
  auto it = frontiers_.find(block);
  return it == frontiers_.end() ? empty_ : it->second;
}

const std::vector<BasicBlock*>& DominatorTree::children(
    BasicBlock* block) const {
  auto it = children_.find(block);
  return it == children_.end() ? empty_ : it->second;
}

}  // namespace irgnn::ir
