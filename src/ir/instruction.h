// Instruction representation.
//
// A single concrete Instruction class carries the opcode, the operand list
// and a small amount of opcode-specific payload (compare predicate, alloca
// element type, atomic sub-operation). Keeping one class instead of a
// subclass per opcode makes the parser, printer, cloner and graph builder
// uniform; opcode-specific accessors assert the opcode they require.
//
// Operand conventions (all operands participate in use lists, including
// basic-block and function references):
//   Ret        : [] or [value]
//   Br         : [target]  or  [cond, true_target, false_target]
//   Binary ops : [lhs, rhs]
//   ICmp/FCmp  : [lhs, rhs]                  (+ predicate payload)
//   Alloca     : [array_size]                (+ allocated type payload)
//   Load       : [pointer]
//   Store      : [value, pointer]
//   GEP        : [base, index...]            (typed-pointer arithmetic)
//   Casts      : [value]
//   Phi        : [v0, block0, v1, block1, ...]
//   Select     : [cond, true_value, false_value]
//   Call       : [callee, arg...]
//   AtomicRMW  : [pointer, value]            (+ atomic op payload)
#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "ir/value.h"

namespace irgnn::ir {

class BasicBlock;
class Function;

enum class Opcode {
  // Terminators
  Ret,
  Br,
  // Integer arithmetic / bitwise
  Add,
  Sub,
  Mul,
  SDiv,
  SRem,
  And,
  Or,
  Xor,
  Shl,
  LShr,
  AShr,
  // Floating-point arithmetic
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Comparisons
  ICmp,
  FCmp,
  // Memory
  Alloca,
  Load,
  Store,
  GetElementPtr,
  AtomicRMW,
  // Casts
  Trunc,
  ZExt,
  SExt,
  SIToFP,
  FPToSI,
  FPExt,
  FPTrunc,
  Bitcast,
  // Other
  Phi,
  Select,
  Call,
};

enum class ICmpPred { EQ, NE, SLT, SLE, SGT, SGE };
enum class FCmpPred { OEQ, ONE, OLT, OLE, OGT, OGE };
enum class AtomicOp { Add, FAdd, Min, Max };

const char* opcode_name(Opcode op);
const char* icmp_pred_name(ICmpPred p);
const char* fcmp_pred_name(FCmpPred p);
const char* atomic_op_name(AtomicOp op);

class Instruction : public Value {
 public:
  Instruction(Opcode opcode, Type* type, std::vector<Value*> operands,
              std::string name = "");
  ~Instruction() override;

  Opcode opcode() const { return opcode_; }
  BasicBlock* parent() const { return parent_; }

  unsigned num_operands() const {
    return static_cast<unsigned>(operands_.size());
  }
  Value* operand(unsigned i) const {
    assert(i < operands_.size());
    return operands_[i];
  }
  void set_operand(unsigned i, Value* v);
  /// Appends an operand slot (used by phi construction and the parser).
  void add_operand(Value* v);
  /// Drops every operand reference (use-list cleanup before deletion).
  void drop_all_references();

  // --- Opcode classification -------------------------------------------
  bool is_terminator() const {
    return opcode_ == Opcode::Ret || opcode_ == Opcode::Br;
  }
  bool is_binary_op() const {
    return opcode_ >= Opcode::Add && opcode_ <= Opcode::FDiv;
  }
  bool is_int_binary_op() const {
    return opcode_ >= Opcode::Add && opcode_ <= Opcode::AShr;
  }
  bool is_fp_binary_op() const {
    return opcode_ >= Opcode::FAdd && opcode_ <= Opcode::FDiv;
  }
  bool is_commutative() const {
    switch (opcode_) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::FAdd:
      case Opcode::FMul:
        return true;
      default:
        return false;
    }
  }
  bool is_cast() const {
    return opcode_ >= Opcode::Trunc && opcode_ <= Opcode::Bitcast;
  }
  bool is_cmp() const {
    return opcode_ == Opcode::ICmp || opcode_ == Opcode::FCmp;
  }

  /// True if the instruction writes memory or has externally visible
  /// behaviour: stores, atomics, calls to non-pure callees, terminators.
  bool has_side_effects() const;

  /// True if the instruction can be erased when it has no uses. Loads are
  /// removable (our IR has no volatile), side-effecting instructions not.
  bool is_trivially_dead() const {
    return !has_uses() && !has_side_effects() && !is_terminator();
  }

  /// True if the instruction reads memory (loads and atomics); such
  /// instructions cannot be hoisted/merged across stores.
  bool reads_memory() const {
    return opcode_ == Opcode::Load || opcode_ == Opcode::AtomicRMW ||
           opcode_ == Opcode::Call;
  }

  // --- Opcode-specific payloads ----------------------------------------
  ICmpPred icmp_pred() const {
    assert(opcode_ == Opcode::ICmp);
    return icmp_pred_;
  }
  void set_icmp_pred(ICmpPred p) { icmp_pred_ = p; }

  FCmpPred fcmp_pred() const {
    assert(opcode_ == Opcode::FCmp);
    return fcmp_pred_;
  }
  void set_fcmp_pred(FCmpPred p) { fcmp_pred_ = p; }

  Type* allocated_type() const {
    assert(opcode_ == Opcode::Alloca);
    return allocated_type_;
  }
  void set_allocated_type(Type* t) { allocated_type_ = t; }

  AtomicOp atomic_op() const {
    assert(opcode_ == Opcode::AtomicRMW);
    return atomic_op_;
  }
  void set_atomic_op(AtomicOp op) { atomic_op_ = op; }

  /// Element type a GEP steps over (the pointee of the base pointer).
  Type* gep_source_type() const;

  // --- Branch helpers ----------------------------------------------------
  bool is_conditional_branch() const {
    return opcode_ == Opcode::Br && num_operands() == 3;
  }
  Value* branch_condition() const {
    assert(is_conditional_branch());
    return operand(0);
  }
  BasicBlock* successor(unsigned i) const;
  unsigned num_successors() const;

  // --- Phi helpers -------------------------------------------------------
  unsigned phi_num_incoming() const {
    assert(opcode_ == Opcode::Phi);
    return num_operands() / 2;
  }
  Value* phi_incoming_value(unsigned i) const {
    assert(opcode_ == Opcode::Phi);
    return operand(2 * i);
  }
  BasicBlock* phi_incoming_block(unsigned i) const;
  void phi_add_incoming(Value* value, BasicBlock* block);
  void phi_set_incoming_value(unsigned i, Value* v) { set_operand(2 * i, v); }
  /// Removes the incoming pair at index i.
  void phi_remove_incoming(unsigned i);
  /// Index of the incoming pair for `block`, or -1.
  int phi_incoming_index(const BasicBlock* block) const;

  // --- Call helpers ------------------------------------------------------
  Function* called_function() const;
  unsigned call_num_args() const {
    assert(opcode_ == Opcode::Call);
    return num_operands() - 1;
  }
  Value* call_arg(unsigned i) const {
    assert(opcode_ == Opcode::Call);
    return operand(i + 1);
  }

 private:
  friend class BasicBlock;

  Opcode opcode_;
  BasicBlock* parent_ = nullptr;
  std::vector<Value*> operands_;
  ICmpPred icmp_pred_ = ICmpPred::EQ;
  FCmpPred fcmp_pred_ = FCmpPred::OEQ;
  AtomicOp atomic_op_ = AtomicOp::Add;
  Type* allocated_type_ = nullptr;
};

}  // namespace irgnn::ir
