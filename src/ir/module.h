// Module: the unit of compilation. Owns functions, globals, the type
// context and the interned constant pool.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/function.h"
#include "ir/type.h"
#include "ir/value.h"

namespace irgnn::ir {

class Module {
 public:
  explicit Module(std::string name = "module") : name_(std::move(name)) {}
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;
  /// Severs every operand link before members are destroyed: instruction
  /// destructors drop their uses, and without this the interned constants
  /// (declared after functions_, hence destroyed first) would already be
  /// gone when instructions unlink from them.
  ~Module();

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  TypeContext& types() { return ctx_; }
  const TypeContext& types() const { return ctx_; }

  // --- Functions -----------------------------------------------------------
  Function* add_function(Type* fn_type, const std::string& name);
  Function* get_function(const std::string& name) const;
  std::vector<Function*> functions() const {
    std::vector<Function*> out;
    out.reserve(functions_.size());
    for (const auto& f : functions_) out.push_back(f.get());
    return out;
  }
  void erase_function(Function* fn);

  // --- Globals ---------------------------------------------------------------
  GlobalVariable* add_global(Type* contained, const std::string& name);
  GlobalVariable* get_global(const std::string& name) const;
  std::vector<GlobalVariable*> globals() const {
    std::vector<GlobalVariable*> out;
    out.reserve(globals_.size());
    for (const auto& g : globals_) out.push_back(g.get());
    return out;
  }

  // --- Interned constants ----------------------------------------------------
  ConstantInt* get_int(Type* type, std::int64_t value);
  ConstantInt* get_i1(bool value);
  ConstantInt* get_i32(std::int32_t value);
  ConstantInt* get_i64(std::int64_t value);
  ConstantFP* get_fp(Type* type, double value);
  ConstantFP* get_double(double value);
  ConstantUndef* get_undef(Type* type);

  /// Total instruction count across functions (bodies only).
  std::size_t instruction_count() const;

  /// Deep structural clone (functions, blocks, instructions, attributes).
  std::unique_ptr<Module> clone() const;

 private:
  std::string name_;
  TypeContext ctx_;
  std::vector<std::unique_ptr<Function>> functions_;
  std::vector<std::unique_ptr<GlobalVariable>> globals_;
  std::map<std::pair<Type*, std::int64_t>, std::unique_ptr<ConstantInt>>
      int_constants_;
  std::map<std::pair<Type*, double>, std::unique_ptr<ConstantFP>>
      fp_constants_;
  std::map<Type*, std::unique_ptr<ConstantUndef>> undef_constants_;
};

}  // namespace irgnn::ir
