// CFG utilities: traversal orders and reachability.
#pragma once

#include <unordered_set>
#include <vector>

#include "ir/function.h"

namespace irgnn::ir {

/// Blocks in reverse post-order from the entry (unreachable blocks omitted).
std::vector<BasicBlock*> reverse_post_order(const Function& fn);

/// Blocks reachable from the entry.
std::unordered_set<BasicBlock*> reachable_blocks(const Function& fn);

}  // namespace irgnn::ir
