// Value hierarchy for the mini-LLVM IR.
//
// Everything an instruction can reference is a Value: arguments, constants,
// globals, other instructions, basic blocks (branch / phi targets) and
// functions (call targets). Values carry an explicit use list so passes can
// run def-use queries (replace_all_uses_with, DCE, mem2reg) without any
// auxiliary maps; Instruction::set_operand keeps the lists consistent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"

namespace irgnn::ir {

class Instruction;

class Value {
 public:
  enum class Kind {
    Argument,
    ConstantInt,
    ConstantFP,
    ConstantUndef,
    GlobalVariable,
    Instruction,
    BasicBlock,
    Function,
  };

  /// One occupied operand slot in a user instruction.
  struct Use {
    Instruction* user;
    unsigned index;
  };

  virtual ~Value() = default;
  Value(const Value&) = delete;
  Value& operator=(const Value&) = delete;

  Kind value_kind() const { return kind_; }
  Type* type() const { return type_; }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const std::vector<Use>& uses() const { return uses_; }
  bool has_uses() const { return !uses_.empty(); }
  std::size_t num_uses() const { return uses_.size(); }

  /// Rewrites every operand slot that references this value to reference
  /// `replacement` instead.
  void replace_all_uses_with(Value* replacement);

  bool is_constant() const {
    return kind_ == Kind::ConstantInt || kind_ == Kind::ConstantFP ||
           kind_ == Kind::ConstantUndef;
  }

 protected:
  Value(Kind kind, Type* type, std::string name)
      : kind_(kind), type_(type), name_(std::move(name)) {}

 private:
  friend class Instruction;

  Kind kind_;
  Type* type_;
  std::string name_;
  std::vector<Use> uses_;
};

/// Formal parameter of a Function.
class Argument : public Value {
 public:
  Argument(Type* type, std::string name, unsigned index)
      : Value(Kind::Argument, type, std::move(name)), index_(index) {}
  unsigned index() const { return index_; }

 private:
  unsigned index_;
};

/// Integer constant (covers i1/i8/i32/i64).
class ConstantInt : public Value {
 public:
  ConstantInt(Type* type, std::int64_t value)
      : Value(Kind::ConstantInt, type, ""), value_(value) {}
  std::int64_t value() const { return value_; }
  bool is_zero() const { return value_ == 0; }
  bool is_one() const { return value_ == 1; }

 private:
  std::int64_t value_;
};

/// Floating-point constant (float or double typed; stored as double).
class ConstantFP : public Value {
 public:
  ConstantFP(Type* type, double value)
      : Value(Kind::ConstantFP, type, ""), value_(value) {}
  double value() const { return value_; }
  bool is_zero() const { return value_ == 0.0; }

 private:
  double value_;
};

/// Undefined value of a given type.
class ConstantUndef : public Value {
 public:
  explicit ConstantUndef(Type* type) : Value(Kind::ConstantUndef, type, "") {}
};

/// Module-level variable. Its Value type is a pointer to the contained type.
class GlobalVariable : public Value {
 public:
  GlobalVariable(Type* pointer_type, Type* contained, std::string name)
      : Value(Kind::GlobalVariable, pointer_type, std::move(name)),
        contained_(contained) {}
  Type* contained_type() const { return contained_; }

 private:
  Type* contained_;
};

}  // namespace irgnn::ir
