// Convenience construction API for IR, mirroring llvm::IRBuilder.
//
// The builder tracks an insertion block; create_* methods append to it and
// auto-name temporaries (%tN, unique per function). Type checking is by
// assertion — the Verifier gives the authoritative diagnosis.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instruction.h"
#include "ir/module.h"

namespace irgnn::ir {

class IRBuilder {
 public:
  explicit IRBuilder(Module* module) : module_(module) {}

  Module* module() const { return module_; }
  BasicBlock* insert_block() const { return block_; }
  void set_insert_point(BasicBlock* block) { block_ = block; }

  // --- Terminators ---------------------------------------------------------
  Instruction* create_ret(Value* value = nullptr);
  Instruction* create_br(BasicBlock* target);
  Instruction* create_cond_br(Value* cond, BasicBlock* if_true,
                              BasicBlock* if_false);

  // --- Arithmetic ------------------------------------------------------------
  Instruction* create_binary(Opcode op, Value* lhs, Value* rhs,
                             const std::string& name = "");
  Instruction* create_add(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::Add, l, r, n);
  }
  Instruction* create_sub(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::Sub, l, r, n);
  }
  Instruction* create_mul(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::Mul, l, r, n);
  }
  Instruction* create_sdiv(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::SDiv, l, r, n);
  }
  Instruction* create_srem(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::SRem, l, r, n);
  }
  Instruction* create_and(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::And, l, r, n);
  }
  Instruction* create_or(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::Or, l, r, n);
  }
  Instruction* create_xor(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::Xor, l, r, n);
  }
  Instruction* create_shl(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::Shl, l, r, n);
  }
  Instruction* create_fadd(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::FAdd, l, r, n);
  }
  Instruction* create_fsub(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::FSub, l, r, n);
  }
  Instruction* create_fmul(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::FMul, l, r, n);
  }
  Instruction* create_fdiv(Value* l, Value* r, const std::string& n = "") {
    return create_binary(Opcode::FDiv, l, r, n);
  }

  // --- Comparisons -----------------------------------------------------------
  Instruction* create_icmp(ICmpPred pred, Value* lhs, Value* rhs,
                           const std::string& name = "");
  Instruction* create_fcmp(FCmpPred pred, Value* lhs, Value* rhs,
                           const std::string& name = "");

  // --- Memory ---------------------------------------------------------------
  Instruction* create_alloca(Type* type, Value* array_size = nullptr,
                             const std::string& name = "");
  Instruction* create_load(Value* pointer, const std::string& name = "");
  Instruction* create_store(Value* value, Value* pointer);
  /// GEP over a typed pointer; result element type follows the index chain
  /// (one index steps over the pointee; a second index enters an array).
  Instruction* create_gep(Value* base, std::vector<Value*> indices,
                          const std::string& name = "");
  Instruction* create_atomic_rmw(AtomicOp op, Value* pointer, Value* value,
                                 const std::string& name = "");

  // --- Casts ------------------------------------------------------------------
  Instruction* create_cast(Opcode op, Value* value, Type* to,
                           const std::string& name = "");

  // --- Other -------------------------------------------------------------------
  Instruction* create_phi(Type* type, const std::string& name = "");
  Instruction* create_select(Value* cond, Value* if_true, Value* if_false,
                             const std::string& name = "");
  Instruction* create_call(Function* callee, std::vector<Value*> args,
                           const std::string& name = "");

 private:
  Instruction* insert(std::unique_ptr<Instruction> inst,
                      const std::string& name);
  Module* module_;
  BasicBlock* block_ = nullptr;
};

}  // namespace irgnn::ir
