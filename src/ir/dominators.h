// Dominator tree (Cooper-Harvey-Kennedy iterative algorithm) and dominance
// frontiers (for mem2reg's phi placement).
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/function.h"

namespace irgnn::ir {

class DominatorTree {
 public:
  explicit DominatorTree(const Function& fn);

  /// Immediate dominator; nullptr for the entry block and for blocks
  /// unreachable from the entry.
  BasicBlock* idom(BasicBlock* block) const;

  /// True if `a` dominates `b` (reflexive). Unreachable blocks dominate
  /// nothing and are dominated by nothing.
  bool dominates(BasicBlock* a, BasicBlock* b) const;

  /// True if instruction `def` dominates the use at instruction `user`
  /// operand slot `index` (phi uses are checked at the incoming block's
  /// terminator, per SSA convention).
  bool dominates(const Instruction* def, const Instruction* user,
                 unsigned operand_index) const;

  /// Dominance frontier of `block`.
  const std::vector<BasicBlock*>& frontier(BasicBlock* block) const;

  /// Dominator-tree children.
  const std::vector<BasicBlock*>& children(BasicBlock* block) const;

  bool is_reachable(BasicBlock* block) const {
    return index_.count(block) != 0;
  }

  const std::vector<BasicBlock*>& rpo() const { return rpo_; }

 private:
  std::vector<BasicBlock*> rpo_;
  std::unordered_map<BasicBlock*, std::size_t> index_;  // block -> RPO index
  std::vector<int> idom_;                               // by RPO index
  std::unordered_map<BasicBlock*, std::vector<BasicBlock*>> frontiers_;
  std::unordered_map<BasicBlock*, std::vector<BasicBlock*>> children_;
  std::vector<BasicBlock*> empty_;
};

}  // namespace irgnn::ir
