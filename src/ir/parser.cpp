#include "ir/parser.h"

#include <cctype>
#include <cstdlib>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "ir/instruction.h"

namespace irgnn::ir {

namespace {

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

enum class TokKind {
  Word,     // identifiers, keywords, opcodes, type names
  Local,    // %name
  Global,   // @name
  Number,   // integer or floating literal
  String,   // "..."
  Punct,    // single-character punctuation
  End,
};

struct Token {
  TokKind kind;
  std::string text;  // for Punct, the single character
  int line;
  int col;  // 1-based column of the token's first character
};

std::string at_line_col(int line, int col) {
  return "line " + std::to_string(line) + ", col " + std::to_string(col);
}

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { tokenize(); }
  const std::vector<Token>& tokens() const { return tokens_; }
  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

 private:
  static bool is_ident_char(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == '.' || c == '+' || c == '-';
  }

  void tokenize() {
    std::size_t i = 0;
    int line = 1;
    std::size_t line_start = 0;  // index of the current line's first char
    const auto col_of = [&](std::size_t pos) {
      return static_cast<int>(pos - line_start) + 1;
    };
    while (i < text_.size()) {
      char c = text_[i];
      if (c == '\n') {
        ++line;
        ++i;
        line_start = i;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == ';') {  // comment to end of line
        while (i < text_.size() && text_[i] != '\n') ++i;
        continue;
      }
      const int col = col_of(i);
      if (c == '%' || c == '@') {
        std::size_t start = ++i;
        while (i < text_.size() && is_ident_char(text_[i])) ++i;
        tokens_.push_back({c == '%' ? TokKind::Local : TokKind::Global,
                           text_.substr(start, i - start), line, col});
        continue;
      }
      if (c == '"') {
        std::size_t start = ++i;
        while (i < text_.size() && text_[i] != '"') ++i;
        if (i >= text_.size()) {
          error_ = at_line_col(line, col) + ": unterminated string";
          return;
        }
        tokens_.push_back({TokKind::String, text_.substr(start, i - start),
                           line, col});
        ++i;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '-' && i + 1 < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[i + 1])))) {
        std::size_t start = i;
        if (c == '-') ++i;
        while (i < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[i])) ||
                text_[i] == '.'))
          ++i;
        if (i < text_.size() && (text_[i] == 'e' || text_[i] == 'E')) {
          ++i;
          if (i < text_.size() && (text_[i] == '+' || text_[i] == '-')) ++i;
          while (i < text_.size() &&
                 std::isdigit(static_cast<unsigned char>(text_[i])))
            ++i;
        }
        tokens_.push_back({TokKind::Number, text_.substr(start, i - start),
                           line, col});
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::size_t start = i;
        while (i < text_.size() && is_ident_char(text_[i])) ++i;
        tokens_.push_back({TokKind::Word, text_.substr(start, i - start),
                           line, col});
        continue;
      }
      static const std::string punct = "{}()[],=:*";
      if (punct.find(c) != std::string::npos) {
        tokens_.push_back({TokKind::Punct, std::string(1, c), line, col});
        ++i;
        continue;
      }
      error_ = at_line_col(line, col) + ": unexpected character '" +
               std::string(1, c) + "'";
      return;
    }
    tokens_.push_back({TokKind::End, "", line, col_of(i)});
  }

  const std::string& text_;
  std::vector<Token> tokens_;
  std::string error_;
};

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Deferred operand: resolved after a whole function body has been read so
/// forward references (phi inputs, branch targets) work.
struct OperandSpec {
  enum class Kind { Local, Global, Block, ConstInt, ConstFP, Undef } kind;
  std::string name;
  Type* type = nullptr;  // expected type (for constants / undef)
  std::int64_t ival = 0;
  double fval = 0.0;
  int line = 0;
  int col = 0;
};

class Parser {
 public:
  explicit Parser(const std::string& text) : lexer_(text), text_(text) {}

  std::unique_ptr<Module> run(std::string* error) {
    if (!lexer_.ok()) {
      if (error) *error = lexer_.error();
      return nullptr;
    }
    module_ = std::make_unique<Module>();
    try {
      parse_module();
      // Recover the module name from the conventional header comment.
      const std::string tag = "; ModuleID = '";
      auto pos = text_.find(tag);
      if (pos != std::string::npos) {
        auto end = text_.find('\'', pos + tag.size());
        if (end != std::string::npos)
          module_->set_name(text_.substr(pos + tag.size(),
                                         end - pos - tag.size()));
      }
    } catch (const std::runtime_error& e) {
      if (error) *error = e.what();
      return nullptr;
    }
    return std::move(module_);
  }

 private:
  [[noreturn]] void fail(const std::string& message) {
    fail_at(peek(), message);
  }

  /// For errors about an already-consumed token: points at the offender,
  /// not at whatever happens to follow it.
  [[noreturn]] void fail_at(const Token& tok, const std::string& message) {
    throw std::runtime_error(at_line_col(tok.line, tok.col) + ": " + message);
  }

  const Token& peek(int ahead = 0) const {
    std::size_t i = pos_ + static_cast<std::size_t>(ahead);
    return i < lexer_.tokens().size() ? lexer_.tokens()[i]
                                      : lexer_.tokens().back();
  }
  Token next() { return lexer_.tokens()[pos_ < lexer_.tokens().size() - 1
                                            ? pos_++
                                            : pos_]; }
  bool at(TokKind kind, const std::string& text = "") const {
    return peek().kind == kind && (text.empty() || peek().text == text);
  }
  Token expect(TokKind kind, const std::string& text = "") {
    if (!at(kind, text))
      fail("expected '" + (text.empty() ? std::string("<token>") : text) +
           "', found '" + peek().text + "'");
    return next();
  }

  // --- Types ---------------------------------------------------------------
  Type* parse_type(int depth = 0) {
    // Hostile input can nest array types arbitrarily deep; the recursion
    // must fail with a diagnostic before it can exhaust the stack.
    if (depth > 32) fail("type nesting too deep");
    TypeContext& ctx = module_->types();
    Type* base = nullptr;
    if (at(TokKind::Punct, "[")) {
      next();
      Token n = expect(TokKind::Number);
      Token x = expect(TokKind::Word);
      if (x.text != "x") fail("expected 'x' in array type");
      Type* elem = parse_type(depth + 1);
      expect(TokKind::Punct, "]");
      base = ctx.array_of(elem, std::strtoull(n.text.c_str(), nullptr, 10));
    } else {
      Token w = expect(TokKind::Word);
      base = ctx.parse(w.text);
      if (!base) fail_at(w, "unknown type '" + w.text + "'");
    }
    while (at(TokKind::Punct, "*")) {
      next();
      base = ctx.pointer_to(base);
    }
    return base;
  }

  // --- Operands --------------------------------------------------------------
  /// Parses a reference whose type is already known (`expected`).
  OperandSpec parse_ref(Type* expected) {
    OperandSpec spec;
    spec.line = peek().line;
    spec.col = peek().col;
    spec.type = expected;
    if (at(TokKind::Local)) {
      spec.kind = OperandSpec::Kind::Local;
      spec.name = next().text;
    } else if (at(TokKind::Global)) {
      spec.kind = OperandSpec::Kind::Global;
      spec.name = next().text;
    } else if (at(TokKind::Word, "undef")) {
      next();
      spec.kind = OperandSpec::Kind::Undef;
    } else if (at(TokKind::Number)) {
      std::string text = next().text;
      if (expected && expected->is_floating_point()) {
        spec.kind = OperandSpec::Kind::ConstFP;
        spec.fval = std::strtod(text.c_str(), nullptr);
      } else if (text.find('.') != std::string::npos ||
                 text.find('e') != std::string::npos ||
                 text.find('E') != std::string::npos) {
        spec.kind = OperandSpec::Kind::ConstFP;
        spec.fval = std::strtod(text.c_str(), nullptr);
      } else {
        spec.kind = OperandSpec::Kind::ConstInt;
        spec.ival = std::strtoll(text.c_str(), nullptr, 10);
      }
    } else {
      fail("expected operand, found '" + peek().text + "'");
    }
    return spec;
  }

  /// Parses "type ref".
  std::pair<Type*, OperandSpec> parse_typed_ref() {
    Type* type = parse_type();
    return {type, parse_ref(type)};
  }

  /// Parses "label %name".
  OperandSpec parse_label_ref() {
    Token kw = expect(TokKind::Word);
    if (kw.text != "label") fail("expected 'label'");
    Token name = expect(TokKind::Local);
    OperandSpec spec;
    spec.kind = OperandSpec::Kind::Block;
    spec.name = name.text;
    spec.line = name.line;
    spec.col = name.col;
    return spec;
  }

  // --- Module ---------------------------------------------------------------
  void parse_module() {
    while (!at(TokKind::End)) {
      if (at(TokKind::Global)) {
        // "@name = global <type>"
        Token name = next();
        expect(TokKind::Punct, "=");
        Token kw = expect(TokKind::Word);
        if (kw.text != "global") fail("expected 'global'");
        Type* contained = parse_type();
        module_->add_global(contained, name.text);
      } else if (at(TokKind::Word, "declare")) {
        next();
        parse_function(/*is_declaration=*/true);
      } else if (at(TokKind::Word, "define")) {
        next();
        parse_function(/*is_declaration=*/false);
      } else {
        fail("expected top-level entity, found '" + peek().text + "'");
      }
    }
  }

  void parse_function(bool is_declaration) {
    Type* ret = parse_type();
    Token name = expect(TokKind::Global);
    expect(TokKind::Punct, "(");
    std::vector<Type*> param_types;
    std::vector<std::string> param_names;
    while (!at(TokKind::Punct, ")")) {
      if (!param_types.empty()) expect(TokKind::Punct, ",");
      param_types.push_back(parse_type());
      if (at(TokKind::Local))
        param_names.push_back(next().text);
      else
        param_names.push_back("");
    }
    expect(TokKind::Punct, ")");

    Type* fn_type = module_->types().function(ret, param_types);
    Function* fn = module_->add_function(fn_type, name.text);
    for (unsigned i = 0; i < fn->num_args(); ++i)
      if (!param_names[i].empty()) fn->set_arg_name(i, param_names[i]);

    // Attributes: zero or more "key"="value" pairs.
    while (at(TokKind::String)) {
      std::string key = next().text;
      expect(TokKind::Punct, "=");
      std::string value = expect(TokKind::String).text;
      fn->set_attribute(key, value);
    }

    if (is_declaration) return;
    expect(TokKind::Punct, "{");
    parse_body(fn);
    expect(TokKind::Punct, "}");
  }

  // --- Function body -----------------------------------------------------------
  void parse_body(Function* fn) {
    blocks_.clear();
    locals_.clear();
    pending_.clear();
    for (unsigned i = 0; i < fn->num_args(); ++i)
      locals_[fn->arg(i)->name()] = fn->arg(i);

    // Pre-scan for block labels (word followed by ':') so forward branch
    // targets resolve and textual block order is preserved.
    std::size_t depth = 1;
    for (std::size_t i = pos_; i + 1 < lexer_.tokens().size(); ++i) {
      const Token& tok = lexer_.tokens()[i];
      if (tok.kind == TokKind::Punct && tok.text == "{") ++depth;
      if (tok.kind == TokKind::Punct && tok.text == "}" && --depth == 0) break;
      const Token& after = lexer_.tokens()[i + 1];
      if (tok.kind == TokKind::Word && after.kind == TokKind::Punct &&
          after.text == ":") {
        if (!blocks_.count(tok.text)) blocks_[tok.text] = fn->add_block(tok.text);
      }
    }
    if (fn->num_blocks() == 0) fail("function body has no blocks");

    BasicBlock* current = nullptr;
    while (!at(TokKind::Punct, "}")) {
      if (at(TokKind::Word) && peek(1).kind == TokKind::Punct &&
          peek(1).text == ":") {
        current = blocks_.at(next().text);
        next();  // ':'
        continue;
      }
      if (!current) fail("instruction before first block label");
      parse_instruction(current);
    }

    // Resolve deferred operands.
    for (auto& [inst, specs] : pending_) {
      for (const OperandSpec& spec : specs)
        inst->add_operand(resolve(spec));
    }
  }

  Value* resolve(const OperandSpec& spec) {
    switch (spec.kind) {
      case OperandSpec::Kind::Local: {
        auto it = locals_.find(spec.name);
        if (it == locals_.end() || !it->second)
          throw std::runtime_error(at_line_col(spec.line, spec.col) +
                                   ": unknown local %" + spec.name);
        return it->second;
      }
      case OperandSpec::Kind::Block: {
        auto it = blocks_.find(spec.name);
        if (it == blocks_.end())
          throw std::runtime_error(at_line_col(spec.line, spec.col) +
                                   ": unknown block %" + spec.name);
        return it->second;
      }
      case OperandSpec::Kind::Global: {
        if (Function* fn = module_->get_function(spec.name)) return fn;
        if (GlobalVariable* g = module_->get_global(spec.name)) return g;
        throw std::runtime_error(at_line_col(spec.line, spec.col) +
                                 ": unknown global @" + spec.name);
      }
      case OperandSpec::Kind::ConstInt:
        return module_->get_int(spec.type, spec.ival);
      case OperandSpec::Kind::ConstFP:
        return module_->get_fp(spec.type, spec.fval);
      case OperandSpec::Kind::Undef:
        return module_->get_undef(spec.type);
    }
    return nullptr;
  }

  /// Creates the instruction shell, registers its deferred operands, adds it
  /// to `block` and records its name.
  Instruction* emit(BasicBlock* block, Opcode opcode, Type* type,
                    std::vector<OperandSpec> specs, const std::string& name) {
    auto inst = std::make_unique<Instruction>(opcode, type,
                                              std::vector<Value*>{}, name);
    Instruction* raw = block->push_back(std::move(inst));
    pending_.emplace_back(raw, std::move(specs));
    if (!name.empty()) {
      if (locals_.count(name)) fail("duplicate local %" + name);
      locals_[name] = raw;
    }
    return raw;
  }

  static std::optional<Opcode> opcode_from_name(const std::string& name) {
    static const std::map<std::string, Opcode> table = {
        {"ret", Opcode::Ret},       {"br", Opcode::Br},
        {"add", Opcode::Add},       {"sub", Opcode::Sub},
        {"mul", Opcode::Mul},       {"sdiv", Opcode::SDiv},
        {"srem", Opcode::SRem},     {"and", Opcode::And},
        {"or", Opcode::Or},         {"xor", Opcode::Xor},
        {"shl", Opcode::Shl},       {"lshr", Opcode::LShr},
        {"ashr", Opcode::AShr},     {"fadd", Opcode::FAdd},
        {"fsub", Opcode::FSub},     {"fmul", Opcode::FMul},
        {"fdiv", Opcode::FDiv},     {"icmp", Opcode::ICmp},
        {"fcmp", Opcode::FCmp},     {"alloca", Opcode::Alloca},
        {"load", Opcode::Load},     {"store", Opcode::Store},
        {"getelementptr", Opcode::GetElementPtr},
        {"atomicrmw", Opcode::AtomicRMW},
        {"trunc", Opcode::Trunc},   {"zext", Opcode::ZExt},
        {"sext", Opcode::SExt},     {"sitofp", Opcode::SIToFP},
        {"fptosi", Opcode::FPToSI}, {"fpext", Opcode::FPExt},
        {"fptrunc", Opcode::FPTrunc},
        {"bitcast", Opcode::Bitcast},
        {"phi", Opcode::Phi},       {"select", Opcode::Select},
        {"call", Opcode::Call},
    };
    auto it = table.find(name);
    if (it == table.end()) return std::nullopt;
    return it->second;
  }

  void parse_instruction(BasicBlock* block) {
    std::string result_name;
    if (at(TokKind::Local)) {
      result_name = next().text;
      expect(TokKind::Punct, "=");
    }
    Token op_tok = expect(TokKind::Word);
    auto opcode = opcode_from_name(op_tok.text);
    if (!opcode) fail_at(op_tok, "unknown opcode '" + op_tok.text + "'");
    TypeContext& ctx = module_->types();

    switch (*opcode) {
      case Opcode::Ret: {
        if (at(TokKind::Word, "void")) {
          next();
          emit(block, Opcode::Ret, ctx.void_ty(), {}, "");
        } else {
          auto [type, ref] = parse_typed_ref();
          (void)type;
          emit(block, Opcode::Ret, ctx.void_ty(), {ref}, "");
        }
        break;
      }
      case Opcode::Br: {
        if (at(TokKind::Word, "label")) {
          OperandSpec target = parse_label_ref();
          emit(block, Opcode::Br, ctx.void_ty(), {target}, "");
        } else {
          auto [type, cond] = parse_typed_ref();
          (void)type;
          expect(TokKind::Punct, ",");
          OperandSpec t = parse_label_ref();
          expect(TokKind::Punct, ",");
          OperandSpec f = parse_label_ref();
          emit(block, Opcode::Br, ctx.void_ty(), {cond, t, f}, "");
        }
        break;
      }
      case Opcode::ICmp: {
        Token pred = expect(TokKind::Word);
        auto [type, lhs] = parse_typed_ref();
        expect(TokKind::Punct, ",");
        OperandSpec rhs = parse_ref(type);
        Instruction* inst =
            emit(block, Opcode::ICmp, ctx.int1_ty(), {lhs, rhs}, result_name);
        if (pred.text == "eq") inst->set_icmp_pred(ICmpPred::EQ);
        else if (pred.text == "ne") inst->set_icmp_pred(ICmpPred::NE);
        else if (pred.text == "slt") inst->set_icmp_pred(ICmpPred::SLT);
        else if (pred.text == "sle") inst->set_icmp_pred(ICmpPred::SLE);
        else if (pred.text == "sgt") inst->set_icmp_pred(ICmpPred::SGT);
        else if (pred.text == "sge") inst->set_icmp_pred(ICmpPred::SGE);
        else fail_at(pred, "unknown icmp predicate '" + pred.text + "'");
        break;
      }
      case Opcode::FCmp: {
        Token pred = expect(TokKind::Word);
        auto [type, lhs] = parse_typed_ref();
        expect(TokKind::Punct, ",");
        OperandSpec rhs = parse_ref(type);
        Instruction* inst =
            emit(block, Opcode::FCmp, ctx.int1_ty(), {lhs, rhs}, result_name);
        if (pred.text == "oeq") inst->set_fcmp_pred(FCmpPred::OEQ);
        else if (pred.text == "one") inst->set_fcmp_pred(FCmpPred::ONE);
        else if (pred.text == "olt") inst->set_fcmp_pred(FCmpPred::OLT);
        else if (pred.text == "ole") inst->set_fcmp_pred(FCmpPred::OLE);
        else if (pred.text == "ogt") inst->set_fcmp_pred(FCmpPred::OGT);
        else if (pred.text == "oge") inst->set_fcmp_pred(FCmpPred::OGE);
        else fail_at(pred, "unknown fcmp predicate '" + pred.text + "'");
        break;
      }
      case Opcode::Alloca: {
        Type* allocated = parse_type();
        expect(TokKind::Punct, ",");
        auto [size_type, size] = parse_typed_ref();
        (void)size_type;
        Instruction* inst = emit(block, Opcode::Alloca,
                                 ctx.pointer_to(allocated), {size},
                                 result_name);
        inst->set_allocated_type(allocated);
        break;
      }
      case Opcode::Load: {
        Type* result = parse_type();
        expect(TokKind::Punct, ",");
        auto [ptr_type, ptr] = parse_typed_ref();
        (void)ptr_type;
        emit(block, Opcode::Load, result, {ptr}, result_name);
        break;
      }
      case Opcode::Store: {
        auto [vtype, value] = parse_typed_ref();
        (void)vtype;
        expect(TokKind::Punct, ",");
        auto [ptype, ptr] = parse_typed_ref();
        (void)ptype;
        emit(block, Opcode::Store, ctx.void_ty(), {value, ptr}, "");
        break;
      }
      case Opcode::GetElementPtr: {
        Type* source = parse_type();
        expect(TokKind::Punct, ",");
        auto [btype, base] = parse_typed_ref();
        (void)btype;
        std::vector<OperandSpec> specs{base};
        Type* elem = source;
        bool first = true;
        while (at(TokKind::Punct, ",")) {
          next();
          auto [itype, idx] = parse_typed_ref();
          (void)itype;
          specs.push_back(idx);
          if (!first) {
            if (!elem->is_array()) fail("extra GEP index into non-array");
            elem = elem->element();
          }
          first = false;
        }
        emit(block, Opcode::GetElementPtr, ctx.pointer_to(elem), specs,
             result_name);
        break;
      }
      case Opcode::AtomicRMW: {
        Token op = expect(TokKind::Word);
        auto [ptype, ptr] = parse_typed_ref();
        expect(TokKind::Punct, ",");
        auto [vtype, value] = parse_typed_ref();
        (void)ptype;
        Instruction* inst =
            emit(block, Opcode::AtomicRMW, vtype, {ptr, value}, result_name);
        if (op.text == "add") inst->set_atomic_op(AtomicOp::Add);
        else if (op.text == "fadd") inst->set_atomic_op(AtomicOp::FAdd);
        else if (op.text == "min") inst->set_atomic_op(AtomicOp::Min);
        else if (op.text == "max") inst->set_atomic_op(AtomicOp::Max);
        else fail_at(op, "unknown atomicrmw op '" + op.text + "'");
        break;
      }
      case Opcode::Trunc:
      case Opcode::ZExt:
      case Opcode::SExt:
      case Opcode::SIToFP:
      case Opcode::FPToSI:
      case Opcode::FPExt:
      case Opcode::FPTrunc:
      case Opcode::Bitcast: {
        auto [vtype, value] = parse_typed_ref();
        (void)vtype;
        Token to = expect(TokKind::Word);
        if (to.text != "to") fail("expected 'to' in cast");
        Type* target = parse_type();
        emit(block, *opcode, target, {value}, result_name);
        break;
      }
      case Opcode::Phi: {
        Type* type = parse_type();
        std::vector<OperandSpec> specs;
        bool first = true;
        while (first || at(TokKind::Punct, ",")) {
          if (!first) next();
          expect(TokKind::Punct, "[");
          specs.push_back(parse_ref(type));
          expect(TokKind::Punct, ",");
          Token blk = expect(TokKind::Local);
          OperandSpec bspec;
          bspec.kind = OperandSpec::Kind::Block;
          bspec.name = blk.text;
          bspec.line = blk.line;
          bspec.col = blk.col;
          specs.push_back(bspec);
          expect(TokKind::Punct, "]");
          first = false;
        }
        emit(block, Opcode::Phi, type, specs, result_name);
        break;
      }
      case Opcode::Select: {
        auto [ctype, cond] = parse_typed_ref();
        (void)ctype;
        expect(TokKind::Punct, ",");
        auto [ttype, tval] = parse_typed_ref();
        expect(TokKind::Punct, ",");
        auto [ftype, fval] = parse_typed_ref();
        (void)ftype;
        emit(block, Opcode::Select, ttype, {cond, tval, fval}, result_name);
        break;
      }
      case Opcode::Call: {
        Type* ret = parse_type();
        Token callee = expect(TokKind::Global);
        OperandSpec cspec;
        cspec.kind = OperandSpec::Kind::Global;
        cspec.name = callee.text;
        cspec.line = callee.line;
        cspec.col = callee.col;
        std::vector<OperandSpec> specs{cspec};
        expect(TokKind::Punct, "(");
        while (!at(TokKind::Punct, ")")) {
          if (specs.size() > 1) expect(TokKind::Punct, ",");
          auto [atype, arg] = parse_typed_ref();
          (void)atype;
          specs.push_back(arg);
        }
        expect(TokKind::Punct, ")");
        emit(block, Opcode::Call, ret, specs, result_name);
        break;
      }
      default: {  // binary arithmetic
        auto [type, lhs] = parse_typed_ref();
        expect(TokKind::Punct, ",");
        OperandSpec rhs = parse_ref(type);
        emit(block, *opcode, type, {lhs, rhs}, result_name);
        break;
      }
    }
  }

  Lexer lexer_;
  const std::string& text_;
  std::size_t pos_ = 0;
  std::unique_ptr<Module> module_;
  std::map<std::string, BasicBlock*> blocks_;
  std::map<std::string, Value*> locals_;
  std::vector<std::pair<Instruction*, std::vector<OperandSpec>>> pending_;
};

}  // namespace

std::unique_ptr<Module> parse_module(const std::string& text,
                                     std::string* error) {
  Parser parser(text);
  return parser.run(error);
}

}  // namespace irgnn::ir
