#include "ir/loop_info.h"

#include <algorithm>

namespace irgnn::ir {

BasicBlock* Loop::preheader() const {
  BasicBlock* candidate = nullptr;
  for (BasicBlock* pred : header_->predecessors()) {
    if (contains(pred)) continue;
    if (candidate) return nullptr;  // multiple out-of-loop predecessors
    candidate = pred;
  }
  if (!candidate) return nullptr;
  Instruction* term = candidate->terminator();
  if (!term || term->num_successors() != 1) return nullptr;
  return candidate;
}

std::vector<BasicBlock*> Loop::exit_blocks() const {
  std::vector<BasicBlock*> exits;
  for (BasicBlock* block : blocks_) {
    for (BasicBlock* succ : block->successors()) {
      if (!contains(succ) &&
          std::find(exits.begin(), exits.end(), succ) == exits.end())
        exits.push_back(succ);
    }
  }
  return exits;
}

Instruction* Loop::canonical_induction() const {
  if (latches_.size() != 1) return nullptr;
  for (Instruction* phi : header_->phis()) {
    if (!phi->type()->is_integer()) continue;
    if (phi->phi_num_incoming() != 2) continue;
    // One incoming from the latch that is an add of the phi and a constant.
    for (unsigned i = 0; i < 2; ++i) {
      if (phi->phi_incoming_block(i) != latches_[0]) continue;
      Value* step = phi->phi_incoming_value(i);
      if (step->value_kind() != Value::Kind::Instruction) continue;
      auto* add = static_cast<Instruction*>(step);
      if (add->opcode() != Opcode::Add) continue;
      if ((add->operand(0) == phi &&
           add->operand(1)->value_kind() == Value::Kind::ConstantInt) ||
          (add->operand(1) == phi &&
           add->operand(0)->value_kind() == Value::Kind::ConstantInt))
        return phi;
    }
  }
  return nullptr;
}

LoopInfo::LoopInfo(const Function& fn, const DominatorTree& dt) {
  (void)fn;
  // Discover loops from back edges, processed in RPO so outer loops are
  // discovered before the inner loops that share headers further down.
  for (BasicBlock* header : dt.rpo()) {
    std::vector<BasicBlock*> latches;
    for (BasicBlock* pred : header->predecessors())
      if (dt.is_reachable(pred) && dt.dominates(header, pred))
        latches.push_back(pred);
    if (latches.empty()) continue;

    auto loop = std::make_unique<Loop>();
    loop->header_ = header;
    loop->latches_ = latches;
    loop->blocks_.insert(header);
    std::vector<BasicBlock*> work(latches.begin(), latches.end());
    while (!work.empty()) {
      BasicBlock* block = work.back();
      work.pop_back();
      if (loop->blocks_.insert(block).second) {
        for (BasicBlock* pred : block->predecessors())
          if (dt.is_reachable(pred)) work.push_back(pred);
      }
    }
    loops_.push_back(std::move(loop));
  }

  // Nest loops: parent = the smallest strictly-containing loop.
  for (auto& inner : loops_) {
    Loop* best = nullptr;
    for (auto& outer : loops_) {
      if (outer.get() == inner.get()) continue;
      if (!outer->contains(inner->header_)) continue;
      if (outer->blocks().size() <= inner->blocks().size()) continue;
      if (!best || outer->blocks().size() < best->blocks().size())
        best = outer.get();
    }
    inner->parent_ = best;
    if (best)
      best->subloops_.push_back(inner.get());
    else
      top_level_.push_back(inner.get());
  }

  // Innermost-loop map: smaller (more deeply nested) loop wins.
  for (auto& loop : loops_) {
    for (BasicBlock* block : loop->blocks()) {
      auto it = innermost_.find(block);
      if (it == innermost_.end() ||
          loop->blocks().size() < it->second->blocks().size())
        innermost_[block] = loop.get();
    }
  }
}

Loop* LoopInfo::loop_for(BasicBlock* block) const {
  auto it = innermost_.find(block);
  return it == innermost_.end() ? nullptr : it->second;
}

std::vector<Loop*> LoopInfo::loops_innermost_first() const {
  std::vector<Loop*> out;
  for (const auto& loop : loops_) out.push_back(loop.get());
  std::sort(out.begin(), out.end(), [](Loop* a, Loop* b) {
    return a->blocks().size() < b->blocks().size();
  });
  return out;
}

}  // namespace irgnn::ir
