// Function: arguments + basic blocks + string attributes.
//
// Attributes are free-form key/value strings; the workload generators mark
// OpenMP-outlined parallel regions with "omp.outlined"="true" (mirroring how
// Clang outlines `#pragma omp parallel` bodies into `.omp_outlined.`
// functions), and runtime declarations with "pure"="true".
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/value.h"

namespace irgnn::ir {

class Module;

class Function : public Value {
 public:
  Function(Type* fn_type, std::string name, Module* parent);

  Module* parent() const { return parent_; }
  Type* function_type() const { return fn_type_; }
  Type* return_type() const { return fn_type_->return_type(); }

  // --- Arguments ---------------------------------------------------------
  Argument* arg(unsigned i) const { return args_[i].get(); }
  unsigned num_args() const { return static_cast<unsigned>(args_.size()); }
  std::vector<Argument*> args() const {
    std::vector<Argument*> out;
    for (const auto& a : args_) out.push_back(a.get());
    return out;
  }
  void set_arg_name(unsigned i, std::string name) {
    args_[i]->set_name(std::move(name));
  }

  // --- Blocks --------------------------------------------------------------
  bool is_declaration() const { return blocks_.empty(); }
  BasicBlock* entry() const {
    return blocks_.empty() ? nullptr : blocks_.front().get();
  }
  std::size_t num_blocks() const { return blocks_.size(); }
  std::vector<BasicBlock*> blocks() const {
    std::vector<BasicBlock*> out;
    out.reserve(blocks_.size());
    for (const auto& b : blocks_) out.push_back(b.get());
    return out;
  }

  /// Creates and appends a new block.
  BasicBlock* add_block(const std::string& name);

  /// Creates a block inserted immediately after `after` (keeps textual order
  /// readable for split/preheader blocks).
  BasicBlock* add_block_after(BasicBlock* after, const std::string& name);

  /// Unlinks and destroys `block` together with its instructions. All uses
  /// of the block and of its instructions must be gone.
  void erase_block(BasicBlock* block);

  /// Moves `block` to the position right after `after` in the block list.
  void move_block_after(BasicBlock* block, BasicBlock* after);

  // --- Attributes -----------------------------------------------------------
  void set_attribute(const std::string& key, const std::string& value) {
    attrs_[key] = value;
  }
  bool has_attribute(const std::string& key) const { return attrs_.count(key); }
  std::string attribute(const std::string& key) const {
    auto it = attrs_.find(key);
    return it == attrs_.end() ? std::string() : it->second;
  }
  const std::map<std::string, std::string>& attributes() const {
    return attrs_;
  }
  bool is_omp_outlined() const {
    return attribute("omp.outlined") == "true";
  }
  bool is_pure() const { return attribute("pure") == "true"; }

  /// Counts instructions across all blocks.
  std::size_t instruction_count() const;

  /// Fresh id used by IRBuilder for naming temporaries uniquely.
  unsigned next_value_id() { return next_value_id_++; }

 private:
  Type* fn_type_;
  Module* parent_;
  std::vector<std::unique_ptr<Argument>> args_;
  std::vector<std::unique_ptr<BasicBlock>> blocks_;
  std::map<std::string, std::string> attrs_;
  unsigned next_value_id_ = 0;
};

}  // namespace irgnn::ir
