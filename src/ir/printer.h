// Textual IR output in an LLVM-flavoured syntax. The output of print_module
// is accepted verbatim by the Parser (round-trip property, tested).
#pragma once

#include <string>

#include "ir/module.h"

namespace irgnn::ir {

std::string print_module(const Module& module);
std::string print_function(const Function& function);

}  // namespace irgnn::ir
