#include "ir/irbuilder.h"

#include <cassert>

namespace irgnn::ir {

Instruction* IRBuilder::insert(std::unique_ptr<Instruction> inst,
                               const std::string& name) {
  assert(block_ && "no insertion point set");
  if (!name.empty()) {
    inst->set_name(name);
  } else if (!inst->type()->is_void()) {
    inst->set_name("t" + std::to_string(block_->parent()->next_value_id()));
  }
  return block_->push_back(std::move(inst));
}

Instruction* IRBuilder::create_ret(Value* value) {
  std::vector<Value*> ops;
  if (value) ops.push_back(value);
  return insert(std::make_unique<Instruction>(
                    Opcode::Ret, module_->types().void_ty(), ops),
                "");
}

Instruction* IRBuilder::create_br(BasicBlock* target) {
  return insert(std::make_unique<Instruction>(
                    Opcode::Br, module_->types().void_ty(),
                    std::vector<Value*>{target}),
                "");
}

Instruction* IRBuilder::create_cond_br(Value* cond, BasicBlock* if_true,
                                       BasicBlock* if_false) {
  assert(cond->type()->kind() == Type::Kind::Int1);
  return insert(std::make_unique<Instruction>(
                    Opcode::Br, module_->types().void_ty(),
                    std::vector<Value*>{cond, if_true, if_false}),
                "");
}

Instruction* IRBuilder::create_binary(Opcode op, Value* lhs, Value* rhs,
                                      const std::string& name) {
  assert(lhs->type() == rhs->type() && "binary operand type mismatch");
  return insert(std::make_unique<Instruction>(op, lhs->type(),
                                              std::vector<Value*>{lhs, rhs}),
                name);
}

Instruction* IRBuilder::create_icmp(ICmpPred pred, Value* lhs, Value* rhs,
                                    const std::string& name) {
  assert(lhs->type() == rhs->type());
  auto inst = std::make_unique<Instruction>(
      Opcode::ICmp, module_->types().int1_ty(), std::vector<Value*>{lhs, rhs});
  inst->set_icmp_pred(pred);
  return insert(std::move(inst), name);
}

Instruction* IRBuilder::create_fcmp(FCmpPred pred, Value* lhs, Value* rhs,
                                    const std::string& name) {
  assert(lhs->type() == rhs->type());
  auto inst = std::make_unique<Instruction>(
      Opcode::FCmp, module_->types().int1_ty(), std::vector<Value*>{lhs, rhs});
  inst->set_fcmp_pred(pred);
  return insert(std::move(inst), name);
}

Instruction* IRBuilder::create_alloca(Type* type, Value* array_size,
                                      const std::string& name) {
  if (!array_size) array_size = module_->get_i64(1);
  auto inst = std::make_unique<Instruction>(
      Opcode::Alloca, module_->types().pointer_to(type),
      std::vector<Value*>{array_size});
  inst->set_allocated_type(type);
  return insert(std::move(inst), name);
}

Instruction* IRBuilder::create_load(Value* pointer, const std::string& name) {
  assert(pointer->type()->is_pointer());
  return insert(std::make_unique<Instruction>(Opcode::Load,
                                              pointer->type()->pointee(),
                                              std::vector<Value*>{pointer}),
                name);
}

Instruction* IRBuilder::create_store(Value* value, Value* pointer) {
  assert(pointer->type()->is_pointer());
  assert(pointer->type()->pointee() == value->type());
  return insert(std::make_unique<Instruction>(
                    Opcode::Store, module_->types().void_ty(),
                    std::vector<Value*>{value, pointer}),
                "");
}

Instruction* IRBuilder::create_gep(Value* base, std::vector<Value*> indices,
                                   const std::string& name) {
  assert(base->type()->is_pointer());
  assert(!indices.empty());
  // Resolve the result element type: the first index steps over the pointee;
  // each further index must enter an array element.
  Type* elem = base->type()->pointee();
  for (std::size_t i = 1; i < indices.size(); ++i) {
    assert(elem->is_array() && "extra GEP index into non-array");
    elem = elem->element();
  }
  std::vector<Value*> ops{base};
  ops.insert(ops.end(), indices.begin(), indices.end());
  return insert(std::make_unique<Instruction>(
                    Opcode::GetElementPtr, module_->types().pointer_to(elem),
                    std::move(ops)),
                name);
}

Instruction* IRBuilder::create_atomic_rmw(AtomicOp op, Value* pointer,
                                          Value* value,
                                          const std::string& name) {
  assert(pointer->type()->is_pointer());
  assert(pointer->type()->pointee() == value->type());
  auto inst = std::make_unique<Instruction>(
      Opcode::AtomicRMW, value->type(), std::vector<Value*>{pointer, value});
  inst->set_atomic_op(op);
  return insert(std::move(inst), name);
}

Instruction* IRBuilder::create_cast(Opcode op, Value* value, Type* to,
                                    const std::string& name) {
  return insert(
      std::make_unique<Instruction>(op, to, std::vector<Value*>{value}), name);
}

Instruction* IRBuilder::create_phi(Type* type, const std::string& name) {
  return insert(
      std::make_unique<Instruction>(Opcode::Phi, type, std::vector<Value*>{}),
      name);
}

Instruction* IRBuilder::create_select(Value* cond, Value* if_true,
                                      Value* if_false,
                                      const std::string& name) {
  assert(cond->type()->kind() == Type::Kind::Int1);
  assert(if_true->type() == if_false->type());
  return insert(std::make_unique<Instruction>(
                    Opcode::Select, if_true->type(),
                    std::vector<Value*>{cond, if_true, if_false}),
                name);
}

Instruction* IRBuilder::create_call(Function* callee, std::vector<Value*> args,
                                    const std::string& name) {
  std::vector<Value*> ops{callee};
  ops.insert(ops.end(), args.begin(), args.end());
  return insert(std::make_unique<Instruction>(
                    Opcode::Call, callee->return_type(), std::move(ops)),
                name);
}

}  // namespace irgnn::ir
