// Type system for the mini-LLVM IR.
//
// Types are interned: a TypeContext (owned by each Module) hands out
// canonical Type* pointers, so type equality is pointer equality. The type
// zoo is deliberately small — the integer widths, floats, typed pointers,
// sized arrays and function types are exactly what the workload generators
// and the ProGraML-style graph builder need.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace irgnn::ir {

class Type {
 public:
  enum class Kind {
    Void,
    Int1,
    Int8,
    Int32,
    Int64,
    Float,
    Double,
    Pointer,
    Array,
    Function,
    Label,
  };

  Kind kind() const { return kind_; }

  bool is_void() const { return kind_ == Kind::Void; }
  bool is_integer() const {
    return kind_ == Kind::Int1 || kind_ == Kind::Int8 ||
           kind_ == Kind::Int32 || kind_ == Kind::Int64;
  }
  bool is_floating_point() const {
    return kind_ == Kind::Float || kind_ == Kind::Double;
  }
  bool is_pointer() const { return kind_ == Kind::Pointer; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_function() const { return kind_ == Kind::Function; }
  bool is_label() const { return kind_ == Kind::Label; }
  bool is_first_class() const {
    return !is_void() && !is_function() && !is_label();
  }

  /// Bit width of an integer type (1, 8, 32 or 64).
  unsigned int_bits() const;

  /// Size of a value of this type in bytes, as laid out by the simulator's
  /// memory model (pointers are 8 bytes).
  std::uint64_t size_in_bytes() const;

  /// Pointee type; valid only for pointer types.
  Type* pointee() const { return pointee_; }

  /// Element type / length; valid only for array types.
  Type* element() const { return pointee_; }
  std::uint64_t array_length() const { return array_length_; }

  /// Return/parameter types; valid only for function types.
  Type* return_type() const { return pointee_; }
  const std::vector<Type*>& params() const { return params_; }

  std::string to_string() const;

 private:
  friend class TypeContext;
  explicit Type(Kind kind) : kind_(kind) {}

  Kind kind_;
  Type* pointee_ = nullptr;  // pointee / array element / return type
  std::uint64_t array_length_ = 0;
  std::vector<Type*> params_;
};

/// Owns and interns all types used by one Module.
class TypeContext {
 public:
  TypeContext();
  TypeContext(const TypeContext&) = delete;
  TypeContext& operator=(const TypeContext&) = delete;

  Type* void_ty() { return &void_; }
  Type* int1_ty() { return &int1_; }
  Type* int8_ty() { return &int8_; }
  Type* int32_ty() { return &int32_; }
  Type* int64_ty() { return &int64_; }
  Type* float_ty() { return &float_; }
  Type* double_ty() { return &double_; }
  Type* label_ty() { return &label_; }

  Type* pointer_to(Type* pointee);
  Type* array_of(Type* element, std::uint64_t length);
  Type* function(Type* ret, std::vector<Type*> params);

  /// Parses a type string as produced by Type::to_string(); returns nullptr
  /// on malformed input. Used by the IR parser.
  Type* parse(const std::string& text);

 private:
  Type void_, int1_, int8_, int32_, int64_, float_, double_, label_;
  std::map<Type*, std::unique_ptr<Type>> pointers_;
  std::map<std::pair<Type*, std::uint64_t>, std::unique_ptr<Type>> arrays_;
  std::vector<std::unique_ptr<Type>> functions_;
};

}  // namespace irgnn::ir
