// Natural-loop detection over the dominator tree.
//
// A back edge latch->header (header dominates latch) defines a natural loop:
// the set of blocks that can reach the latch without passing through the
// header. Loops are nested into a forest; LICM and the unroller consume this.
#pragma once

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/dominators.h"
#include "ir/function.h"

namespace irgnn::ir {

class Loop {
 public:
  BasicBlock* header() const { return header_; }
  const std::vector<BasicBlock*>& latches() const { return latches_; }
  const std::unordered_set<BasicBlock*>& blocks() const { return blocks_; }
  bool contains(BasicBlock* block) const { return blocks_.count(block) != 0; }

  Loop* parent() const { return parent_; }
  const std::vector<Loop*>& subloops() const { return subloops_; }
  unsigned depth() const {
    unsigned d = 1;
    for (Loop* p = parent_; p; p = p->parent_) ++d;
    return d;
  }

  /// The unique out-of-loop predecessor of the header, if there is exactly
  /// one and it ends in an unconditional branch; else nullptr.
  BasicBlock* preheader() const;

  /// Blocks outside the loop that are branched to from inside.
  std::vector<BasicBlock*> exit_blocks() const;

  /// If the loop is in the canonical counted form
  ///   header: %i = phi [init, pre], [next, latch]; ... cond; br cond body/exit
  /// returns the induction phi; else nullptr. (Best-effort pattern match
  /// used by the unroller.)
  Instruction* canonical_induction() const;

 private:
  friend class LoopInfo;
  BasicBlock* header_ = nullptr;
  std::vector<BasicBlock*> latches_;
  std::unordered_set<BasicBlock*> blocks_;
  Loop* parent_ = nullptr;
  std::vector<Loop*> subloops_;
};

class LoopInfo {
 public:
  LoopInfo(const Function& fn, const DominatorTree& dt);

  /// Innermost loop containing `block`, or nullptr.
  Loop* loop_for(BasicBlock* block) const;

  /// Top-level loops (no parent).
  const std::vector<Loop*>& top_level() const { return top_level_; }

  /// All loops, innermost first.
  std::vector<Loop*> loops_innermost_first() const;

 private:
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<Loop*> top_level_;
  std::unordered_map<BasicBlock*, Loop*> innermost_;
};

}  // namespace irgnn::ir
