// Parser for the textual IR produced by print_module(). Round-trips with the
// printer; diagnostics carry "line L, col C" positions. Malformed input —
// including truncation at any byte and arbitrary byte mutations — is always
// a nullptr return with a diagnostic, never a crash (tests/ir_test.cpp
// sweeps both; src/corpus/ingest.cpp relies on it for hostile files).
#pragma once

#include <memory>
#include <string>

#include "ir/module.h"

namespace irgnn::ir {

/// Parses `text` into a fresh Module. On failure returns nullptr and, if
/// `error` is non-null, stores a human-readable diagnostic.
std::unique_ptr<Module> parse_module(const std::string& text,
                                     std::string* error = nullptr);

}  // namespace irgnn::ir
