#include "ir/cfg.h"

#include <algorithm>

namespace irgnn::ir {

namespace {

void post_order_visit(BasicBlock* block, std::unordered_set<BasicBlock*>& seen,
                      std::vector<BasicBlock*>& out) {
  seen.insert(block);
  for (BasicBlock* succ : block->successors())
    if (!seen.count(succ)) post_order_visit(succ, seen, out);
  out.push_back(block);
}

}  // namespace

std::vector<BasicBlock*> reverse_post_order(const Function& fn) {
  std::vector<BasicBlock*> order;
  if (fn.is_declaration()) return order;
  std::unordered_set<BasicBlock*> seen;
  post_order_visit(fn.entry(), seen, order);
  std::reverse(order.begin(), order.end());
  return order;
}

std::unordered_set<BasicBlock*> reachable_blocks(const Function& fn) {
  std::unordered_set<BasicBlock*> seen;
  if (fn.is_declaration()) return seen;
  std::vector<BasicBlock*> stack{fn.entry()};
  seen.insert(fn.entry());
  while (!stack.empty()) {
    BasicBlock* block = stack.back();
    stack.pop_back();
    for (BasicBlock* succ : block->successors()) {
      if (seen.insert(succ).second) stack.push_back(succ);
    }
  }
  return seen;
}

}  // namespace irgnn::ir
