// Basic block: an ordered list of instructions ending in a terminator.
#pragma once

#include <memory>
#include <vector>

#include "ir/instruction.h"
#include "ir/value.h"

namespace irgnn::ir {

class Function;

class BasicBlock : public Value {
 public:
  BasicBlock(Type* label_type, std::string name, Function* parent)
      : Value(Kind::BasicBlock, label_type, std::move(name)),
        parent_(parent) {}

  Function* parent() const { return parent_; }

  // --- Instruction list --------------------------------------------------
  bool empty() const { return insts_.empty(); }
  std::size_t size() const { return insts_.size(); }
  Instruction* front() const { return insts_.front().get(); }
  Instruction* back() const { return insts_.back().get(); }

  /// Iteration over raw pointers; the block retains ownership.
  std::vector<Instruction*> instructions() const {
    std::vector<Instruction*> out;
    out.reserve(insts_.size());
    for (const auto& inst : insts_) out.push_back(inst.get());
    return out;
  }

  /// Appends `inst` to the end of the block and takes ownership.
  Instruction* push_back(std::unique_ptr<Instruction> inst);

  /// Inserts before `pos` (which must be in this block); nullptr == append.
  Instruction* insert_before(Instruction* pos,
                             std::unique_ptr<Instruction> inst);

  /// Inserts at the head of the block (used for phi placement).
  Instruction* push_front(std::unique_ptr<Instruction> inst);

  /// Unlinks and destroys `inst` (drops its operand references first).
  /// The instruction must have no remaining uses.
  void erase(Instruction* inst);

  /// Unlinks `inst` and returns ownership to the caller (for motion between
  /// blocks, e.g. LICM hoisting).
  std::unique_ptr<Instruction> remove(Instruction* inst);

  /// Index of `inst` in the block, or -1 if absent.
  int index_of(const Instruction* inst) const;

  // --- CFG ----------------------------------------------------------------
  Instruction* terminator() const {
    return (!insts_.empty() && insts_.back()->is_terminator())
               ? insts_.back().get()
               : nullptr;
  }

  /// Successor blocks from the terminator (empty for ret / missing).
  std::vector<BasicBlock*> successors() const;

  /// Predecessors, derived from this block's use list (deduplicated, in
  /// first-seen order). Only terminator references count; phi incoming-block
  /// references do not make a predecessor by themselves.
  std::vector<BasicBlock*> predecessors() const;

  /// Leading phi instructions.
  std::vector<Instruction*> phis() const;

  /// First non-phi instruction (nullptr in an empty block).
  Instruction* first_non_phi() const;

 private:
  Function* parent_;
  std::vector<std::unique_ptr<Instruction>> insts_;
};

}  // namespace irgnn::ir
