#include "ir/type.h"

#include <cassert>
#include <cstdlib>
#include <sstream>

namespace irgnn::ir {

unsigned Type::int_bits() const {
  switch (kind_) {
    case Kind::Int1: return 1;
    case Kind::Int8: return 8;
    case Kind::Int32: return 32;
    case Kind::Int64: return 64;
    default: assert(false && "not an integer type"); return 0;
  }
}

std::uint64_t Type::size_in_bytes() const {
  switch (kind_) {
    case Kind::Int1:
    case Kind::Int8: return 1;
    case Kind::Int32: return 4;
    case Kind::Int64: return 8;
    case Kind::Float: return 4;
    case Kind::Double: return 8;
    case Kind::Pointer: return 8;
    case Kind::Array: return array_length_ * pointee_->size_in_bytes();
    default: return 0;
  }
}

std::string Type::to_string() const {
  switch (kind_) {
    case Kind::Void: return "void";
    case Kind::Int1: return "i1";
    case Kind::Int8: return "i8";
    case Kind::Int32: return "i32";
    case Kind::Int64: return "i64";
    case Kind::Float: return "float";
    case Kind::Double: return "double";
    case Kind::Label: return "label";
    case Kind::Pointer: return pointee_->to_string() + "*";
    case Kind::Array: {
      std::ostringstream os;
      os << "[" << array_length_ << " x " << pointee_->to_string() << "]";
      return os.str();
    }
    case Kind::Function: {
      std::ostringstream os;
      os << pointee_->to_string() << " (";
      for (std::size_t i = 0; i < params_.size(); ++i)
        os << (i ? ", " : "") << params_[i]->to_string();
      os << ")";
      return os.str();
    }
  }
  return "<invalid>";
}

TypeContext::TypeContext()
    : void_(Type::Kind::Void),
      int1_(Type::Kind::Int1),
      int8_(Type::Kind::Int8),
      int32_(Type::Kind::Int32),
      int64_(Type::Kind::Int64),
      float_(Type::Kind::Float),
      double_(Type::Kind::Double),
      label_(Type::Kind::Label) {}

Type* TypeContext::pointer_to(Type* pointee) {
  auto it = pointers_.find(pointee);
  if (it != pointers_.end()) return it->second.get();
  auto ty = std::unique_ptr<Type>(new Type(Type::Kind::Pointer));
  ty->pointee_ = pointee;
  Type* raw = ty.get();
  pointers_.emplace(pointee, std::move(ty));
  return raw;
}

Type* TypeContext::array_of(Type* element, std::uint64_t length) {
  auto key = std::make_pair(element, length);
  auto it = arrays_.find(key);
  if (it != arrays_.end()) return it->second.get();
  auto ty = std::unique_ptr<Type>(new Type(Type::Kind::Array));
  ty->pointee_ = element;
  ty->array_length_ = length;
  Type* raw = ty.get();
  arrays_.emplace(key, std::move(ty));
  return raw;
}

Type* TypeContext::function(Type* ret, std::vector<Type*> params) {
  for (auto& fn : functions_) {
    if (fn->pointee_ == ret && fn->params_ == params) return fn.get();
  }
  auto ty = std::unique_ptr<Type>(new Type(Type::Kind::Function));
  ty->pointee_ = ret;
  ty->params_ = std::move(params);
  functions_.push_back(std::move(ty));
  return functions_.back().get();
}

Type* TypeContext::parse(const std::string& text) {
  // Strip trailing '*'s, then parse the base type, then rewrap.
  std::size_t stars = 0;
  std::size_t end = text.size();
  while (end > 0 && text[end - 1] == '*') {
    ++stars;
    --end;
  }
  std::string base = text.substr(0, end);
  Type* ty = nullptr;
  if (base == "void") ty = void_ty();
  else if (base == "i1") ty = int1_ty();
  else if (base == "i8") ty = int8_ty();
  else if (base == "i32") ty = int32_ty();
  else if (base == "i64") ty = int64_ty();
  else if (base == "float") ty = float_ty();
  else if (base == "double") ty = double_ty();
  else if (base == "label") ty = label_ty();
  else if (!base.empty() && base.front() == '[' && base.back() == ']') {
    // "[N x elem]"
    std::string inner = base.substr(1, base.size() - 2);
    auto x = inner.find(" x ");
    if (x == std::string::npos) return nullptr;
    char* endp = nullptr;
    std::uint64_t n = std::strtoull(inner.substr(0, x).c_str(), &endp, 10);
    Type* elem = parse(inner.substr(x + 3));
    if (!elem) return nullptr;
    ty = array_of(elem, n);
  } else {
    return nullptr;
  }
  for (std::size_t i = 0; i < stars; ++i) ty = pointer_to(ty);
  return ty;
}

}  // namespace irgnn::ir
