// IR well-formedness checks: structural CFG/SSA invariants plus a type
// audit. The test suite runs the verifier after every pass; the pipeline
// runs it in debug builds.
#pragma once

#include <string>
#include <vector>

#include "ir/module.h"

namespace irgnn::ir {

/// Returns a list of human-readable violations; empty means the module is
/// well-formed.
std::vector<std::string> verify_module(const Module& module);

/// Convenience: true iff verify_module(module) is empty. If `errors` is
/// non-null the violations are appended to it.
bool verify(const Module& module, std::string* errors = nullptr);

}  // namespace irgnn::ir
