#include "ir/verifier.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "ir/cfg.h"
#include "ir/dominators.h"
#include "ir/instruction.h"

namespace irgnn::ir {

namespace {

class FunctionVerifier {
 public:
  FunctionVerifier(const Function& fn, std::vector<std::string>& out)
      : fn_(fn), out_(out) {}

  void run() {
    if (fn_.is_declaration()) return;
    check_blocks();
    if (!ok_for_ssa_) return;  // dominance checks need sane structure
    DominatorTree dt(fn_);
    check_ssa(dt);
  }

 private:
  void report(const std::string& message) {
    out_.push_back("function @" + fn_.name() + ": " + message);
  }

  void check_blocks() {
    for (BasicBlock* block : fn_.blocks()) {
      if (block->empty()) {
        report("block %" + block->name() + " is empty");
        ok_for_ssa_ = false;
        continue;
      }
      Instruction* term = block->terminator();
      if (!term) {
        report("block %" + block->name() + " lacks a terminator");
        ok_for_ssa_ = false;
      }
      const auto insts = block->instructions();
      bool seen_non_phi = false;
      for (std::size_t i = 0; i < insts.size(); ++i) {
        Instruction* inst = insts[i];
        if (inst->is_terminator() && i + 1 != insts.size()) {
          report("terminator mid-block in %" + block->name());
          ok_for_ssa_ = false;
        }
        if (inst->opcode() == Opcode::Phi) {
          if (seen_non_phi)
            report("phi after non-phi in %" + block->name());
        } else {
          seen_non_phi = true;
        }
        check_types(inst, block);
      }
    }
    // Phi incoming sets must match predecessor sets exactly.
    auto reachable = reachable_blocks(fn_);
    for (BasicBlock* block : fn_.blocks()) {
      if (!reachable.count(block)) continue;
      auto preds = block->predecessors();
      for (Instruction* phi : block->phis()) {
        if (phi->phi_num_incoming() != preds.size()) {
          std::ostringstream os;
          os << "phi %" << phi->name() << " in %" << block->name() << " has "
             << phi->phi_num_incoming() << " incoming, block has "
             << preds.size() << " predecessors";
          report(os.str());
          continue;
        }
        for (BasicBlock* pred : preds) {
          if (phi->phi_incoming_index(pred) < 0)
            report("phi %" + phi->name() + " misses incoming for %" +
                   pred->name());
        }
      }
    }
  }

  void check_types(Instruction* inst, BasicBlock* block) {
    auto type_err = [&](const std::string& what) {
      report(what + " in %" + block->name() + " (instruction %" +
             (inst->name().empty() ? std::string("<unnamed>") : inst->name()) +
             ")");
    };
    switch (inst->opcode()) {
      case Opcode::Ret: {
        Type* expected = fn_.return_type();
        if (expected->is_void()) {
          if (inst->num_operands() != 0) type_err("ret with value in void fn");
        } else if (inst->num_operands() != 1 ||
                   inst->operand(0)->type() != expected) {
          type_err("ret type mismatch");
        }
        break;
      }
      case Opcode::Br:
        if (inst->is_conditional_branch() &&
            inst->operand(0)->type()->kind() != Type::Kind::Int1)
          type_err("branch condition is not i1");
        break;
      case Opcode::Load:
        if (!inst->operand(0)->type()->is_pointer() ||
            inst->operand(0)->type()->pointee() != inst->type())
          type_err("load type mismatch");
        break;
      case Opcode::Store:
        if (!inst->operand(1)->type()->is_pointer() ||
            inst->operand(1)->type()->pointee() != inst->operand(0)->type())
          type_err("store type mismatch");
        break;
      case Opcode::ICmp:
        if (!inst->operand(0)->type()->is_integer() &&
            !inst->operand(0)->type()->is_pointer())
          type_err("icmp on non-integer");
        if (inst->operand(0)->type() != inst->operand(1)->type())
          type_err("icmp operand types differ");
        break;
      case Opcode::FCmp:
        if (!inst->operand(0)->type()->is_floating_point())
          type_err("fcmp on non-float");
        break;
      case Opcode::Call: {
        Function* callee = inst->called_function();
        if (!callee) {
          type_err("indirect call (unsupported)");
          break;
        }
        if (callee->num_args() != inst->call_num_args()) {
          type_err("call arity mismatch to @" + callee->name());
          break;
        }
        for (unsigned i = 0; i < inst->call_num_args(); ++i)
          if (inst->call_arg(i)->type() != callee->arg(i)->type())
            type_err("call argument " + std::to_string(i) +
                     " type mismatch to @" + callee->name());
        if (inst->type() != callee->return_type())
          type_err("call result type mismatch to @" + callee->name());
        break;
      }
      default:
        if (inst->is_binary_op()) {
          if (inst->operand(0)->type() != inst->operand(1)->type() ||
              inst->operand(0)->type() != inst->type())
            type_err("binary operand/result type mismatch");
          if (inst->is_fp_binary_op() && !inst->type()->is_floating_point())
            type_err("fp binary op on non-float");
          if (inst->is_int_binary_op() && !inst->type()->is_integer())
            type_err("integer binary op on non-integer");
        }
        break;
    }
  }

  void check_ssa(const DominatorTree& dt) {
    auto reachable = reachable_blocks(fn_);
    for (BasicBlock* block : fn_.blocks()) {
      if (!reachable.count(block)) continue;
      for (Instruction* inst : block->instructions()) {
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          Value* op = inst->operand(i);
          if (!op || op->value_kind() != Value::Kind::Instruction) continue;
          auto* def = static_cast<Instruction*>(op);
          if (!reachable.count(def->parent())) continue;
          if (!dt.dominates(def, inst, i)) {
            report("use of %" + def->name() + " in %" + block->name() +
                   " not dominated by its definition");
          }
        }
      }
    }
  }

  const Function& fn_;
  std::vector<std::string>& out_;
  bool ok_for_ssa_ = true;
};

}  // namespace

std::vector<std::string> verify_module(const Module& module) {
  std::vector<std::string> out;
  for (Function* fn : module.functions()) {
    FunctionVerifier verifier(*fn, out);
    verifier.run();
  }
  return out;
}

bool verify(const Module& module, std::string* errors) {
  auto violations = verify_module(module);
  if (errors) {
    for (const auto& v : violations) {
      errors->append(v);
      errors->push_back('\n');
    }
  }
  return violations.empty();
}

}  // namespace irgnn::ir
