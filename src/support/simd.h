// Portable 8-wide float vector for the tensor kernels.
//
// v8f holds 8 float lanes and compiles to AVX (one 256-bit register), SSE2
// (two 128-bit registers) or an unrolled scalar fallback. Bit-identity of
// results — across ISAs, and between the vectorized kernels and the scalar
// reference the tests compare against — rests on two rules:
//
//  1. Every arithmetic op is lane-wise IEEE mul/add/sub/max, which produce
//     the same bits on every path. No FMA, ever: the build compiles with
//     -ffp-contract=off so neither the intrinsic mul+add sequences nor the
//     scalar fallback lanes can be contracted into fused multiply-adds.
//  2. Horizontal reduction uses one fixed accumulation tree,
//         ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7)),
//     implemented with the same pairing on every path. Loop-level helpers
//     (dot / sum / sum_sq_diff) accumulate whole 8-lane blocks lane-wise,
//     fold the lanes with that tree once, then add tail elements in order —
//     so a length-n reduction has exactly one summation order, independent
//     of ISA, thread count and call site.
//
// Thread-count invariance is inherited from PR 1's contract: kernels
// partition output rows, and every output element is computed by exactly
// one index with the order above.
#pragma once

#include <cstddef>
#include <cstdint>

#if defined(__AVX__)
#include <immintrin.h>
#define IRGNN_SIMD_AVX 1
#elif defined(__SSE2__) || defined(_M_X64) || \
    (defined(_M_IX86_FP) && _M_IX86_FP >= 2)
#include <emmintrin.h>
#define IRGNN_SIMD_SSE 1
#endif

namespace irgnn::simd {

inline constexpr int kLanes = 8;

struct v8f {
#if defined(IRGNN_SIMD_AVX)
  __m256 v;

  static v8f zero() { return {_mm256_setzero_ps()}; }
  static v8f broadcast(float s) { return {_mm256_set1_ps(s)}; }
  static v8f load(const float* p) { return {_mm256_loadu_ps(p)}; }
  void store(float* p) const { _mm256_storeu_ps(p, v); }

  friend v8f operator+(v8f a, v8f b) { return {_mm256_add_ps(a.v, b.v)}; }
  friend v8f operator-(v8f a, v8f b) { return {_mm256_sub_ps(a.v, b.v)}; }
  friend v8f operator*(v8f a, v8f b) { return {_mm256_mul_ps(a.v, b.v)}; }
  friend v8f operator/(v8f a, v8f b) { return {_mm256_div_ps(a.v, b.v)}; }

  /// max(x, y) with maxps semantics: (x > y) ? x : y. relu(x) is
  /// max(x, zero()), which matches the scalar `x > 0 ? x : 0` exactly
  /// (including -0.0f and NaN payloads).
  static v8f max(v8f x, v8f y) { return {_mm256_max_ps(x.v, y.v)}; }

  /// Lane-wise (y > 0) ? g : 0 — the relu derivative mask.
  static v8f where_gt_zero(v8f y, v8f g) {
    return {_mm256_and_ps(_mm256_cmp_ps(y.v, _mm256_setzero_ps(), _CMP_GT_OQ),
                          g.v)};
  }

  float hsum() const {
    __m128 lo = _mm256_castps256_ps128(v);    // l0 l1 l2 l3
    __m128 hi = _mm256_extractf128_ps(v, 1);  // l4 l5 l6 l7
    __m128 s = _mm_add_ps(lo, hi);            // l0+l4 l1+l5 l2+l6 l3+l7
    __m128 t = _mm_add_ps(s, _mm_movehl_ps(s, s));  // pairs fold across
    __m128 u = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x1));
    return _mm_cvtss_f32(u);  // ((l0+l4)+(l2+l6)) + ((l1+l5)+(l3+l7))
  }
#elif defined(IRGNN_SIMD_SSE)
  __m128 lo, hi;  // lanes 0-3, 4-7

  static v8f zero() { return {_mm_setzero_ps(), _mm_setzero_ps()}; }
  static v8f broadcast(float s) { return {_mm_set1_ps(s), _mm_set1_ps(s)}; }
  static v8f load(const float* p) {
    return {_mm_loadu_ps(p), _mm_loadu_ps(p + 4)};
  }
  void store(float* p) const {
    _mm_storeu_ps(p, lo);
    _mm_storeu_ps(p + 4, hi);
  }

  friend v8f operator+(v8f a, v8f b) {
    return {_mm_add_ps(a.lo, b.lo), _mm_add_ps(a.hi, b.hi)};
  }
  friend v8f operator-(v8f a, v8f b) {
    return {_mm_sub_ps(a.lo, b.lo), _mm_sub_ps(a.hi, b.hi)};
  }
  friend v8f operator*(v8f a, v8f b) {
    return {_mm_mul_ps(a.lo, b.lo), _mm_mul_ps(a.hi, b.hi)};
  }
  friend v8f operator/(v8f a, v8f b) {
    return {_mm_div_ps(a.lo, b.lo), _mm_div_ps(a.hi, b.hi)};
  }

  static v8f max(v8f x, v8f y) {
    return {_mm_max_ps(x.lo, y.lo), _mm_max_ps(x.hi, y.hi)};
  }

  static v8f where_gt_zero(v8f y, v8f g) {
    __m128 z = _mm_setzero_ps();
    return {_mm_and_ps(_mm_cmpgt_ps(y.lo, z), g.lo),
            _mm_and_ps(_mm_cmpgt_ps(y.hi, z), g.hi)};
  }

  float hsum() const {
    __m128 s = _mm_add_ps(lo, hi);  // same first pairing as the AVX path
    __m128 t = _mm_add_ps(s, _mm_movehl_ps(s, s));
    __m128 u = _mm_add_ss(t, _mm_shuffle_ps(t, t, 0x1));
    return _mm_cvtss_f32(u);
  }
#else
  float lane[kLanes];

  static v8f zero() { return {{0, 0, 0, 0, 0, 0, 0, 0}}; }
  static v8f broadcast(float s) { return {{s, s, s, s, s, s, s, s}}; }
  static v8f load(const float* p) {
    v8f r;
    for (int i = 0; i < kLanes; ++i) r.lane[i] = p[i];
    return r;
  }
  void store(float* p) const {
    for (int i = 0; i < kLanes; ++i) p[i] = lane[i];
  }

  friend v8f operator+(v8f a, v8f b) {
    v8f r;
    for (int i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] + b.lane[i];
    return r;
  }
  friend v8f operator-(v8f a, v8f b) {
    v8f r;
    for (int i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] - b.lane[i];
    return r;
  }
  friend v8f operator*(v8f a, v8f b) {
    v8f r;
    for (int i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] * b.lane[i];
    return r;
  }
  friend v8f operator/(v8f a, v8f b) {
    v8f r;
    for (int i = 0; i < kLanes; ++i) r.lane[i] = a.lane[i] / b.lane[i];
    return r;
  }

  static v8f max(v8f x, v8f y) {
    v8f r;
    for (int i = 0; i < kLanes; ++i)
      r.lane[i] = x.lane[i] > y.lane[i] ? x.lane[i] : y.lane[i];
    return r;
  }

  static v8f where_gt_zero(v8f y, v8f g) {
    v8f r;
    for (int i = 0; i < kLanes; ++i)
      r.lane[i] = y.lane[i] > 0.0f ? g.lane[i] : 0.0f;
    return r;
  }

  float hsum() const {
    float a04 = lane[0] + lane[4];
    float a15 = lane[1] + lane[5];
    float a26 = lane[2] + lane[6];
    float a37 = lane[3] + lane[7];
    return (a04 + a26) + (a15 + a37);
  }
#endif

  v8f& operator+=(v8f o) { return *this = *this + o; }
};

// --- Loop helpers (the canonical deterministic reductions) ------------------

/// sum_i a[i] * b[i] with the fixed block/tree/tail order described above.
inline float dot(const float* a, const float* b, std::int64_t n) {
  v8f acc = v8f::zero();
  std::int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) acc += v8f::load(a + i) * v8f::load(b + i);
  float s = acc.hsum();
  for (; i < n; ++i) s += a[i] * b[i];
  return s;
}

/// sum_i a[i], same order.
inline float sum(const float* a, std::int64_t n) {
  v8f acc = v8f::zero();
  std::int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) acc += v8f::load(a + i);
  float s = acc.hsum();
  for (; i < n; ++i) s += a[i];
  return s;
}

/// sum_i (a[i] - mean)^2, same order (layer-norm variance numerator).
inline float sum_sq_diff(const float* a, float mean, std::int64_t n) {
  v8f m = v8f::broadcast(mean);
  v8f acc = v8f::zero();
  std::int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes) {
    v8f d = v8f::load(a + i) - m;
    acc += d * d;
  }
  float s = acc.hsum();
  for (; i < n; ++i) {
    float d = a[i] - mean;
    s += d * d;
  }
  return s;
}

/// dst[i] += s * x[i]. Element-wise, so vector blocks and scalar tail
/// produce the same bits as a plain scalar loop.
inline void axpy(float* dst, float s, const float* x, std::int64_t n) {
  v8f vs = v8f::broadcast(s);
  std::int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    (v8f::load(dst + i) + vs * v8f::load(x + i)).store(dst + i);
  for (; i < n; ++i) dst[i] += s * x[i];
}

/// dst[i] += x[i].
inline void add_inplace(float* dst, const float* x, std::int64_t n) {
  std::int64_t i = 0;
  for (; i + kLanes <= n; i += kLanes)
    (v8f::load(dst + i) + v8f::load(x + i)).store(dst + i);
  for (; i < n; ++i) dst[i] += x[i];
}

/// True when the build compiled v8f to real vector instructions.
inline constexpr bool vectorized() {
#if defined(IRGNN_SIMD_AVX) || defined(IRGNN_SIMD_SSE)
  return true;
#else
  return false;
#endif
}

}  // namespace irgnn::simd
