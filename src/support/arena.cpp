#include "support/arena.h"

#include <cstdlib>
#include <new>

#include "support/failpoint.h"

namespace irgnn::support {

BufferPool& BufferPool::global() {
  static BufferPool* pool = new BufferPool;  // leaked by design (see header)
  return *pool;
}

int BufferPool::bucket_of(std::size_t bytes) {
  if (bytes > (static_cast<std::size_t>(1) << kMaxBucketBits)) return -1;
  int bucket = 0;
  while (bucket_bytes(bucket) < bytes) ++bucket;
  return bucket;
}

void* BufferPool::allocate(std::size_t bytes) {
  // Fault injection: allocation pressure, the realistic way a forward dies.
  // Thrown here it takes the exact path a real bad_alloc would — the
  // serving layer's pump catches it and resolves the batch Internal; this
  // site proves that containment, it does not invent a new failure mode.
  IRGNN_FAILPOINT("arena.allocate", throw std::bad_alloc());
  const int bucket = bucket_of(bytes);
  if (bucket < 0) {  // oversize: bypass the pool
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.malloc_calls;
    stats_.malloc_bytes += bytes;
    note_outstanding(bytes);
    return ::operator new(bytes);
  }
  const std::size_t rounded = bucket_bytes(bucket);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    note_outstanding(rounded);
    std::vector<void*>& list = free_[bucket];
    if (!list.empty()) {
      void* ptr = list.back();
      list.pop_back();
      ++stats_.pool_hits;
      stats_.pool_hit_bytes += rounded;
      return ptr;
    }
    ++stats_.malloc_calls;
    stats_.malloc_bytes += rounded;
  }
  // The actual allocation happens outside the lock; counters above already
  // recorded it.
  return ::operator new(rounded);
}

void BufferPool::deallocate(void* ptr, std::size_t bytes) {
  if (ptr == nullptr) return;
  const int bucket = bucket_of(bytes);
  if (bucket < 0) {
    ::operator delete(ptr);
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.outstanding_bytes -= bytes;
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.outstanding_bytes -= bucket_bytes(bucket);
  free_[bucket].push_back(ptr);
}

BufferPool::Stats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void BufferPool::trim() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (int bucket = 0; bucket < kNumBuckets; ++bucket) {
    std::vector<void*>& list = free_[bucket];
    stats_.trimmed_bytes += list.size() * bucket_bytes(bucket);
    for (void* ptr : list) ::operator delete(ptr);
    list.clear();
    list.shrink_to_fit();
  }
  ++stats_.trims;
}

}  // namespace irgnn::support
