// Small statistics helpers shared by the evaluation harnesses.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <vector>

namespace irgnn {

inline double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  return std::accumulate(v.begin(), v.end(), 0.0) / static_cast<double>(v.size());
}

inline double geomean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += std::log(std::max(x, 1e-300));
  return std::exp(acc / static_cast<double>(v.size()));
}

inline double stddev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = mean(v);
  double acc = 0.0;
  for (double x : v) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(v.size() - 1));
}

inline double median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  std::size_t n = v.size();
  return n % 2 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Relative difference between two positive quantities as used throughout the
/// paper's evaluation: |a-b| / max(|a|,|b|). Zero when both are zero.
inline double relative_difference(double a, double b) {
  double denom = std::max(std::fabs(a), std::fabs(b));
  if (denom == 0.0) return 0.0;
  return std::fabs(a - b) / denom;
}

inline std::size_t argmin(const std::vector<double>& v) {
  assert(!v.empty());
  return static_cast<std::size_t>(
      std::min_element(v.begin(), v.end()) - v.begin());
}

inline std::size_t argmax(const std::vector<double>& v) {
  assert(!v.empty());
  return static_cast<std::size_t>(
      std::max_element(v.begin(), v.end()) - v.begin());
}

}  // namespace irgnn
