// Named, deterministic fault-injection points for failure-containment
// testing.
//
// A failpoint is a named site in production code where a test (or the chaos
// harness in tests/chaos_test.cpp) can script a fault: inject an error, a
// latency spike, or both. Sites are declared inline where the failure would
// naturally occur:
//
//   IRGNN_FAILPOINT("serve.forward",
//                   forward_status = Status::Internal("injected fault"));
//
// and tests arm them by name:
//
//   support::failpoints::set_seed(0xC405);
//   support::failpoints::configure("serve.forward",
//                                  {.probability = 0.25, .delay_us = 500});
//
// Three properties define the design:
//
//   Compile-time zero cost when off. Failpoints exist only when the library
//   is built with -DIRGNN_FAILPOINTS=ON (CMake option, off by default);
//   otherwise IRGNN_FAILPOINT expands to `do {} while (0)` — no branch, no
//   counter, no registry, nothing for the optimizer to even delete. The
//   zero-allocation counting-new tests and microbench_kernels pin that the
//   default build's hot paths are untouched.
//
//   Deterministic activation. Every site keeps a monotonically increasing
//   hit counter; whether hit k fires is a pure function of (global seed,
//   site name, k): probabilistic specs draw
//   splitmix64(hash_combine64(site_seed, k)) and compare against the
//   probability threshold, every-Nth specs fire when k divides, one-shot
//   specs fire at exactly hit `one_shot_hit`. The same seed therefore
//   reproduces the same fault schedule — which hit numbers fail — at every
//   thread count (which *thread* draws a given hit number still depends on
//   interleaving; the chaos harness's scripted mode drives sites from one
//   thread when it wants bit-exact stat reproduction).
//
//   Error and latency are independent. A firing hit first sleeps
//   `delay_us` (latency injection — a slow disk, a GC pause, a NUMA-remote
//   stall), then runs the site's error action if `inject_error` is set.
//   `delay_us = 0, inject_error = true` is a pure fault;
//   `delay_us > 0, inject_error = false` is a pure stall.
//
// The macro's second argument is a statement; `return x;` works (it returns
// from the enclosing function), but `break`/`continue` would bind to the
// macro's own do-while — use a flag variable for those.
//
// Sites threaded through the library (see each file for exact semantics):
//   serve.forward       InferenceServer::pump_one — the batch forward fails
//                       Internal without running the model.
//   serve.admit         InferenceServer::admit_locked — admission fails
//                       Overloaded (simulated queue exhaustion).
//   serve.cache_insert  InferenceServer::pump_one — the batch's results are
//                       not cached (cache unavailability).
//   router.publish      Router::publish — latency before the swap.
//   router.retire       Router::retire — latency before the drain.
//   arena.allocate      BufferPool::allocate — throws std::bad_alloc, the
//                       realistic cause of a failed forward (the serving
//                       layer must catch it and resolve the batch Internal,
//                       never unwind into a pumping client).
#pragma once

#include <cstdint>
#include <string_view>

namespace irgnn::support::failpoints {

/// What an armed failpoint does when it fires. A default-constructed spec
/// never fires (no trigger configured).
struct FailpointSpec {
  /// Deterministic per-hit Bernoulli: hit k fires iff
  /// splitmix64(hash_combine64(site_seed, k)) < probability * 2^64.
  /// Ignored when every_nth or one_shot_hit is set. >= 1.0 fires always.
  double probability = 0.0;

  /// Fire on every hit k with k % every_nth == 0 (1 = every hit). Takes
  /// precedence over probability; ignored when one_shot_hit is set.
  std::uint64_t every_nth = 0;

  /// Fire exactly once, at 1-based hit number `one_shot_hit`. Highest
  /// precedence trigger.
  std::uint64_t one_shot_hit = 0;

  /// Total fire budget; < 0 means unlimited. The site stops firing (but
  /// keeps counting hits) once spent.
  std::int64_t max_fires = -1;

  /// Latency injection: a firing hit sleeps this long before running the
  /// site's error action (if any).
  std::int64_t delay_us = 0;

  /// Run the site's error action on fire. Off turns the site into a pure
  /// latency injector.
  bool inject_error = true;
};

#if defined(IRGNN_FAILPOINTS)

/// True in builds with failpoints compiled in — lets tests and benches skip
/// (rather than fail) fault-dependent sections in default builds.
constexpr bool enabled() { return true; }

/// Sets the global seed the per-site probability streams derive from, and
/// resets every site's hit/fire counters: a chaos run is (seed; configure*;
/// traffic), reproducible from set_seed on.
void set_seed(std::uint64_t seed);

/// Arms `name` with `spec`, resetting the site's hit/fire counters so
/// every-Nth and one-shot schedules count from the configure call. Sites
/// are created on demand: configuring before the code path first executes
/// is valid (and typical).
void configure(std::string_view name, const FailpointSpec& spec);

/// Disarms `name` (counters retained for inspection).
void disable(std::string_view name);

/// Disarms every site. Tests should call this on teardown; an armed
/// failpoint outliving its test is a classic cross-test heisenbug.
void disable_all();

/// Times the named site was reached / actually fired since its last
/// configure (0 for a never-configured or never-reached site).
std::uint64_t hits(std::string_view name);
std::uint64_t fires(std::string_view name);

namespace detail {

struct SiteState;

/// One IRGNN_FAILPOINT expansion. The function-local static resolves its
/// shared per-name state once (registry lookup under a mutex); after that,
/// an unarmed pass is one relaxed atomic increment and one acquire load.
class FailpointSite {
 public:
  explicit FailpointSite(std::string_view name);

  /// True when this hit fires. Applies the spec's latency injection
  /// (sleeping WITHOUT any failpoint lock held) before returning, so the
  /// caller only has to run its error action when `inject_error` was set
  /// (reported through *run_error_action).
  bool should_fire(bool* run_error_action);

 private:
  SiteState* state_;  // owned by the (leaky) registry, never dangles
};

}  // namespace detail

#define IRGNN_FAILPOINT(name, error_action)                                  \
  do {                                                                       \
    static ::irgnn::support::failpoints::detail::FailpointSite               \
        irgnn_failpoint_site_{(name)};                                       \
    bool irgnn_failpoint_error_ = false;                                     \
    if (irgnn_failpoint_site_.should_fire(&irgnn_failpoint_error_) &&        \
        irgnn_failpoint_error_) {                                            \
      error_action;                                                          \
    }                                                                        \
  } while (0)

#else  // !defined(IRGNN_FAILPOINTS)

// Stubs so configuration code (benches, the chaos harness's healthy mode)
// compiles against the same API in default builds; all of it is dead cheap
// and the macro itself vanishes entirely.
constexpr bool enabled() { return false; }
inline void set_seed(std::uint64_t) {}
inline void configure(std::string_view, const FailpointSpec&) {}
inline void disable(std::string_view) {}
inline void disable_all() {}
inline std::uint64_t hits(std::string_view) { return 0; }
inline std::uint64_t fires(std::string_view) { return 0; }

#define IRGNN_FAILPOINT(name, error_action) \
  do {                                      \
  } while (0)

#endif  // IRGNN_FAILPOINTS

}  // namespace irgnn::support::failpoints
