// Minimal command-line flag parser used by the bench and example binaries.
//
// Supports `--name value`, `--name=value` and boolean `--name`. Unknown
// flags, malformed values (judged against the shape of the registered
// default: integer, real or boolean) and a value flag followed by another
// flag are all reported as errors — parse() returns false and the binary
// exits nonzero — so that harness typos like `--thread 4` or
// `--threads abc` do not silently change an experiment's scale.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace irgnn {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  /// Registers a flag with a default value and a help string. Returns *this
  /// for chaining. Values are stored as strings and converted on access.
  ArgParser& add(const std::string& name, const std::string& default_value,
                 const std::string& help);

  /// Parses argv. On `--help` prints usage and returns false. On an unknown
  /// or malformed flag prints an error plus usage and returns false.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
  };
  std::string program_;
  std::string description_;
  std::vector<std::string> order_;  // registration order for usage output
  std::map<std::string, Flag> flags_;
  std::map<std::string, std::string> values_;
};

}  // namespace irgnn
