#include "support/table.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace irgnn {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << "  " << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find(',') == std::string::npos) return s;
    return "\"" + s + "\"";
  };
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << (c ? "," : "") << quote(headers_[c]);
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << (c ? "," : "") << quote(row[c]);
    os << "\n";
  }
  return os.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

bool Table::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_csv();
  return static_cast<bool>(out);
}

}  // namespace irgnn
