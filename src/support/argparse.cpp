#include "support/argparse.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace irgnn {

namespace {

// A flag's registered default value decides its shape: integer, real,
// boolean or free-form string. Values are validated against that shape at
// parse time, so "--threads abc" (which strtoll would silently read as 0)
// is an error instead of a quietly rescaled experiment.
bool parses_as_int(const std::string& s) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  (void)std::strtoll(s.c_str(), &end, 10);
  return errno == 0 && end == s.c_str() + s.size();
}

bool parses_as_double(const std::string& s) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  (void)std::strtod(s.c_str(), &end);
  return errno == 0 && end == s.c_str() + s.size();
}

bool parses_as_bool(const std::string& s) {
  return s == "true" || s == "false" || s == "1" || s == "0" || s == "yes" ||
         s == "no";
}

}  // namespace

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  if (!flags_.count(name)) order_.push_back(name);
  flags_[name] = Flag{default_value, help};
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    const std::string& default_value = it->second.default_value;
    const bool is_bool =
        default_value == "true" || default_value == "false";
    if (!has_value) {
      // Boolean flags may omit the value; everything else takes the next
      // arg — but never another flag, so "--threads --csv out" is the typo
      // it looks like rather than threads silently becoming 0.
      const bool next_is_flag =
          i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) == 0;
      if (is_bool && (i + 1 >= argc || next_is_flag)) {
        value = "true";
      } else if (i + 1 < argc && !next_is_flag) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "error: flag '--%s' expects a value\n%s",
                     name.c_str(), usage().c_str());
        return false;
      }
    }
    // Shape check against the default: malformed values are errors, not
    // silent zeros.
    const char* expected = nullptr;
    if (is_bool && !parses_as_bool(value))
      expected = "a boolean (true/false/1/0/yes/no)";
    else if (!is_bool && parses_as_int(default_value) &&
             !parses_as_int(value))
      expected = "an integer";
    else if (!is_bool && !parses_as_int(default_value) &&
             parses_as_double(default_value) && !parses_as_double(value))
      expected = "a number";
    if (expected != nullptr) {
      std::fprintf(stderr,
                   "error: flag '--%s' expects %s, got '%s'\n%s",
                   name.c_str(), expected, value.c_str(), usage().c_str());
      return false;
    }
    values_[name] = value;
  }
  return true;
}

std::string ArgParser::get_string(const std::string& name) const {
  auto vit = values_.find(name);
  if (vit != values_.end()) return vit->second;
  auto fit = flags_.find(name);
  if (fit == flags_.end())
    throw std::invalid_argument("unregistered flag: " + name);
  return fit->second.default_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(get_string(name).c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(get_string(name).c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name) const {
  std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace irgnn
