#include "support/argparse.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace irgnn {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

ArgParser& ArgParser::add(const std::string& name,
                          const std::string& default_value,
                          const std::string& help) {
  if (!flags_.count(name)) order_.push_back(name);
  flags_[name] = Flag{default_value, help};
  return *this;
}

bool ArgParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "error: unexpected positional argument '%s'\n%s",
                   arg.c_str(), usage().c_str());
      return false;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    auto eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "error: unknown flag '--%s'\n%s", name.c_str(),
                   usage().c_str());
      return false;
    }
    if (!has_value) {
      // Boolean flags may omit the value; everything else takes the next arg.
      bool is_bool = it->second.default_value == "true" ||
                     it->second.default_value == "false";
      if (is_bool && (i + 1 >= argc ||
                      std::string(argv[i + 1]).rfind("--", 0) == 0)) {
        value = "true";
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        std::fprintf(stderr, "error: flag '--%s' expects a value\n%s",
                     name.c_str(), usage().c_str());
        return false;
      }
    }
    values_[name] = value;
  }
  return true;
}

std::string ArgParser::get_string(const std::string& name) const {
  auto vit = values_.find(name);
  if (vit != values_.end()) return vit->second;
  auto fit = flags_.find(name);
  if (fit == flags_.end())
    throw std::invalid_argument("unregistered flag: " + name);
  return fit->second.default_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::strtoll(get_string(name).c_str(), nullptr, 10);
}

double ArgParser::get_double(const std::string& name) const {
  return std::strtod(get_string(name).c_str(), nullptr);
}

bool ArgParser::get_bool(const std::string& name) const {
  std::string v = get_string(name);
  return v == "true" || v == "1" || v == "yes";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace irgnn
