// Buffer arena for the training/inference hot path.
//
// Every tape node, data/grad buffer, per-op auxiliary vector and matmul pack
// scratch in the tensor layer allocates through BufferPool, a process-wide
// free list bucketed by power-of-two size class. Buffers return to their
// bucket on destruction instead of going back to malloc, so a train step
// that repeats the same op sequence (the steady state of minibatch SGD)
// performs zero heap allocations once the pool is warm. The pool keeps
// counters (malloc_calls / pool_hits / bytes) that the micro-benchmarks and
// the arena tests read to verify exactly that.
//
// Three adapters plug the pool into standard containers and smart pointers:
//
//   PoolAllocator<T>  - std::allocator drop-in; PoolVector<T> is the vector
//                       alias the tensor layer uses for float/int buffers.
//   make_pooled<T>()  - allocate_shared through the pool, so shared_ptr
//                       control blocks recycle too.
//
// Thread safety: one mutex guards the free lists. The hot path touches the
// pool a few hundred times per shard step, far from contention; correctness
// (and the determinism contract) never depends on the pool, which only
// recycles storage and never changes what is computed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

namespace irgnn::support {

class BufferPool {
 public:
  struct Stats {
    std::uint64_t malloc_calls = 0;  // requests that had to hit operator new
    std::uint64_t malloc_bytes = 0;  // bytes obtained from operator new
    std::uint64_t pool_hits = 0;     // requests served from a free list
    std::uint64_t pool_hit_bytes = 0;
    /// Bytes currently checked out of the pool (allocated, not yet
    /// returned; oversize pass-through requests included) and the highest
    /// that watermark has ever been. The serving benches surface the
    /// high-water mark as the engine's true working-set footprint — trim()
    /// releases idle blocks but can never lower outstanding_bytes.
    std::uint64_t outstanding_bytes = 0;
    std::uint64_t high_water_bytes = 0;
    /// Bytes released back to the system by trim() calls, and how many
    /// trims ran — the idle-trim satellite made observable.
    std::uint64_t trimmed_bytes = 0;
    std::uint64_t trims = 0;
  };

  /// Process-wide pool. Intentionally leaked (never destroyed) so buffers
  /// released from static-storage objects during shutdown always have a live
  /// pool to return to, regardless of static initialization order.
  static BufferPool& global();

  /// Returns a block of at least `bytes` bytes (rounded up to the bucket
  /// size), from the bucket free list when possible.
  void* allocate(std::size_t bytes);

  /// Returns the block of `bytes` (same value passed to allocate) to its
  /// bucket free list. Never calls free()/operator delete for pooled sizes.
  void deallocate(void* ptr, std::size_t bytes);

  Stats stats() const;

  /// Releases every cached block back to the system (tests and memory
  /// pressure; outstanding allocations are unaffected).
  void trim();

 private:
  // Buckets are powers of two from 2^6 (64 B) to 2^30 (1 GiB); larger
  // requests bypass the pool entirely and always malloc.
  static constexpr int kMinBucketBits = 6;
  static constexpr int kMaxBucketBits = 30;
  static constexpr int kNumBuckets = kMaxBucketBits - kMinBucketBits + 1;

  static int bucket_of(std::size_t bytes);
  static std::size_t bucket_bytes(int bucket) {
    return static_cast<std::size_t>(1) << (bucket + kMinBucketBits);
  }

  /// Bumps the outstanding-bytes watermark for a request of `bytes` (the
  /// bucket-rounded size for pooled requests). Caller holds mutex_.
  void note_outstanding(std::size_t bytes) {
    stats_.outstanding_bytes += bytes;
    if (stats_.outstanding_bytes > stats_.high_water_bytes)
      stats_.high_water_bytes = stats_.outstanding_bytes;
  }

  mutable std::mutex mutex_;
  std::vector<void*> free_[kNumBuckets];
  Stats stats_;
};

/// Standard allocator over BufferPool::global(). All instances compare
/// equal: memory from any of them may be released through any other.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  PoolAllocator() noexcept = default;
  template <typename U>
  PoolAllocator(const PoolAllocator<U>&) noexcept {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(BufferPool::global().allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    BufferPool::global().deallocate(p, n * sizeof(T));
  }

  template <typename U>
  bool operator==(const PoolAllocator<U>&) const noexcept {
    return true;
  }
  template <typename U>
  bool operator!=(const PoolAllocator<U>&) const noexcept {
    return false;
  }
};

/// A vector whose storage recycles through the arena.
template <typename T>
using PoolVector = std::vector<T, PoolAllocator<T>>;

/// allocate_shared through the pool: object and control block recycle as one
/// bucket-sized block.
template <typename T, typename... Args>
std::shared_ptr<T> make_pooled(Args&&... args) {
  return std::allocate_shared<T>(PoolAllocator<T>{},
                                 std::forward<Args>(args)...);
}

}  // namespace irgnn::support
