// Deterministic random number generation.
//
// Every stochastic component of the library (flag-sequence sampling, GNN
// weight init, genetic algorithm, trace generation) draws from explicitly
// seeded streams so that experiments reproduce bit-for-bit. We provide
// splitmix64 (for seeding / cheap hashing) and xoshiro256** (main generator),
// both public-domain algorithms by Blackman & Vigna.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cmath>
#include <vector>

namespace irgnn {

/// Mixes a 64-bit value into a well-distributed 64-bit output. Useful both as
/// a seeding function and as a deterministic hash.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values; used to derive per-entity substreams
/// (e.g. per-region, per-flag-sequence) from one master seed.
inline std::uint64_t hash_combine64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** PRNG. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234ABCDULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = next_below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element of a non-empty vector.
  template <typename T>
  const T& choice(const std::vector<T>& v) {
    return v[next_below(v.size())];
  }

  /// k distinct indices drawn uniformly from [0, n). k <= n required.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) {
    std::vector<std::size_t> pool(n);
    for (std::size_t i = 0; i < n; ++i) pool[i] = i;
    for (std::size_t i = 0; i < k; ++i) {
      std::size_t j = i + next_below(n - i);
      std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace irgnn
