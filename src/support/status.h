// Exception-free error model for the serving query path.
//
// The serve layer's front door (serve::Router / serve::InferenceServer)
// promises that a query can never throw at a client: overload, deadline
// misses, unknown model names and shutdown races are ordinary answers, not
// stack unwinding. Status carries one of a small closed set of codes plus a
// static message; StatusOr<T> is "a T or the Status explaining why not".
//
// Two properties matter for the hot path:
//
//   Never allocates. Status is two words (code + const char* to a string
//   literal) and trivially copyable, so returning one from the
//   zero-allocation cache-hit path costs nothing. Messages must therefore
//   be string literals (or otherwise outlive every holder) — there is
//   deliberately no std::string constructor.
//
//   Never throws. value() on a non-ok StatusOr is a programming error
//   caught by assert, mirroring the library's shape checks, not an
//   exception.
#pragma once

#include <cassert>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace irgnn::support {

// The numeric values are the wire protocol: net/codec.h transmits a
// Response's code as this exact byte (wire format version 1), so a client
// built from one revision must decode a server built from another. New codes
// append at the end with the next value; existing values NEVER change or
// reorder. The static_asserts below pin every assignment so an accidental
// insertion fails the build instead of silently renumbering the wire enum.
enum class StatusCode : std::uint8_t {
  kOk = 0,
  kOverloaded = 1,        // bounded admission queue full (Reject) or shed
  kDeadlineExceeded = 2,  // request out-waited its deadline_us in the queue
  kModelNotFound = 3,     // router has no model under the requested name
  kShuttingDown = 4,      // submitted after shutdown() began
  kInternal = 5,          // the answering forward failed (e.g. bad_alloc)
  kUnavailable = 6,   // circuit breaker open: miss short-circuited, retry later
  kInvalidArgument = 7,  // malformed request (e.g. empty graph), never admitted
};

inline constexpr std::uint8_t kNumStatusCodes = 8;

static_assert(static_cast<std::uint8_t>(StatusCode::kOk) == 0 &&
                  static_cast<std::uint8_t>(StatusCode::kOverloaded) == 1 &&
                  static_cast<std::uint8_t>(StatusCode::kDeadlineExceeded) ==
                      2 &&
                  static_cast<std::uint8_t>(StatusCode::kModelNotFound) == 3 &&
                  static_cast<std::uint8_t>(StatusCode::kShuttingDown) == 4 &&
                  static_cast<std::uint8_t>(StatusCode::kInternal) == 5 &&
                  static_cast<std::uint8_t>(StatusCode::kUnavailable) == 6 &&
                  static_cast<std::uint8_t>(StatusCode::kInvalidArgument) == 7,
              "StatusCode values are wire format v1 (net/codec.h): append new "
              "codes, never renumber existing ones");

inline const char* status_code_name(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "Ok";
    case StatusCode::kOverloaded: return "Overloaded";
    case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
    case StatusCode::kModelNotFound: return "ModelNotFound";
    case StatusCode::kShuttingDown: return "ShuttingDown";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
  }
  return "Unknown";
}

class Status {
 public:
  constexpr Status() = default;  // Ok

  constexpr bool ok() const { return code_ == StatusCode::kOk; }
  constexpr StatusCode code() const { return code_; }
  constexpr const char* message() const { return message_; }
  const char* code_name() const { return status_code_name(code_); }

  // Named constructors, one per code.
  static constexpr Status Ok() { return Status(); }
  static constexpr Status Overloaded(
      const char* message = "admission queue full") {
    return Status(StatusCode::kOverloaded, message);
  }
  static constexpr Status DeadlineExceeded(
      const char* message = "deadline expired before the query was served") {
    return Status(StatusCode::kDeadlineExceeded, message);
  }
  static constexpr Status ModelNotFound(
      const char* message = "no model published under the requested name") {
    return Status(StatusCode::kModelNotFound, message);
  }
  static constexpr Status ShuttingDown(
      const char* message = "server is shutting down") {
    return Status(StatusCode::kShuttingDown, message);
  }
  static constexpr Status Internal(const char* message = "internal error") {
    return Status(StatusCode::kInternal, message);
  }
  static constexpr Status Unavailable(
      const char* message = "model circuit breaker open") {
    return Status(StatusCode::kUnavailable, message);
  }
  static constexpr Status InvalidArgument(
      const char* message = "malformed request") {
    return Status(StatusCode::kInvalidArgument, message);
  }

  friend constexpr bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;  // codes define identity; messages are detail
  }
  friend constexpr bool operator!=(const Status& a, const Status& b) {
    return !(a == b);
  }

 private:
  constexpr Status(StatusCode code, const char* message)
      : code_(code), message_(message) {}

  StatusCode code_ = StatusCode::kOk;
  const char* message_ = "";  // static-duration string, never owned
};

/// A value of type T, or the Status explaining its absence. Move-only (the
/// serve layer stores move-only Futures in it); the value is engaged exactly
/// when status().ok().
template <typename T>
class StatusOr {
 public:
  /// Error state. `status` must not be Ok — an Ok StatusOr must carry a T.
  StatusOr(Status status) : status_(status) {  // NOLINT: implicit by design
    assert(!status.ok() && "StatusOr(Status) requires an error status");
    if (status_.ok()) status_ = Status::Internal("Ok status without a value");
  }

  StatusOr(T value) : status_(Status::Ok()) {  // NOLINT: implicit by design
    ::new (&storage_) T(std::move(value));
  }

  StatusOr(StatusOr&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>)
      : status_(other.status_) {
    if (status_.ok()) ::new (&storage_) T(std::move(other.ref()));
  }

  StatusOr& operator=(StatusOr&& other) noexcept(
      std::is_nothrow_move_constructible_v<T>) {
    if (this != &other) {
      destroy();
      status_ = other.status_;
      if (status_.ok()) ::new (&storage_) T(std::move(other.ref()));
    }
    return *this;
  }

  StatusOr(const StatusOr&) = delete;
  StatusOr& operator=(const StatusOr&) = delete;

  ~StatusOr() { destroy(); }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok() && "value() on a non-ok StatusOr");
    return ref();
  }
  const T& value() const& {
    assert(ok() && "value() on a non-ok StatusOr");
    return ref();
  }
  T&& value() && {
    assert(ok() && "value() on a non-ok StatusOr");
    return std::move(ref());
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T&& operator*() && { return std::move(*this).value(); }

 private:
  T& ref() { return *std::launder(reinterpret_cast<T*>(&storage_)); }
  const T& ref() const {
    return *std::launder(reinterpret_cast<const T*>(&storage_));
  }
  void destroy() {
    if (status_.ok()) ref().~T();
  }

  Status status_;
  std::aligned_storage_t<sizeof(T), alignof(T)> storage_;
};

}  // namespace irgnn::support
