#include "support/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

namespace irgnn::support {

ThreadPool::ThreadPool(int num_workers) {
  workers_.reserve(std::max(num_workers, 0));
  for (int i = 0; i < num_workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool([] {
    if (const char* env = std::getenv("IRGNN_NUM_THREADS")) {
      int n = std::atoi(env);
      if (n > 0) return n - 1;  // the caller counts as one executor
    }
    unsigned hw = std::thread::hardware_concurrency();
    return static_cast<int>(std::max(hw, 8u)) - 1;
  }());
  return pool;
}

void ThreadPool::enqueue(Task task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!stop_) queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

namespace {

/// Shared state of one parallel_for call. Helpers that the scheduler never
/// ran before the caller finished observe `closed` and back out without
/// touching `fn`, which lives on the caller's stack.
struct ParallelForState {
  std::int64_t end = 0;
  std::int64_t chunk = 1;
  std::atomic<std::int64_t> next{0};
  std::atomic<bool> closed{false};
  std::atomic<int> active_helpers{0};
  std::mutex mutex;
  std::condition_variable done_cv;
  std::exception_ptr error;           // from the lowest failing chunk
  std::int64_t error_chunk = -1;
  // Borrowed view of the caller's callable, valid until `closed` is set and
  // every helper has left (parallel_for blocks for exactly that long).
  const FunctionRef<void(std::int64_t)>* fn = nullptr;

  void run_chunks() {
    for (;;) {
      std::int64_t start = next.fetch_add(chunk, std::memory_order_relaxed);
      if (start >= end) return;
      std::int64_t stop = std::min(end, start + chunk);
      try {
        for (std::int64_t i = start; i < stop; ++i) (*fn)(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex);
        if (error_chunk < 0 || start < error_chunk) {
          error_chunk = start;
          error = std::current_exception();
        }
      }
    }
  }
};

}  // namespace

void ThreadPool::parallel_for(std::int64_t begin, std::int64_t end,
                              int max_parallelism,
                              FunctionRef<void(std::int64_t)> fn) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  int parallelism = max_parallelism > 0 ? max_parallelism : num_workers() + 1;
  parallelism = static_cast<int>(
      std::min<std::int64_t>(parallelism, n));
  if (parallelism <= 1 || num_workers() == 0) {
    for (std::int64_t i = begin; i < end; ++i) fn(i);
    return;
  }

  auto state = make_pooled<ParallelForState>();
  state->end = end;
  // ~4 chunks per executor keeps stragglers short without per-index
  // scheduling overhead. Chunking never affects results: indices are
  // independent under the parallel_for contract.
  state->chunk = std::max<std::int64_t>(1, n / (4 * parallelism));
  state->next.store(begin, std::memory_order_relaxed);
  state->fn = &fn;

  auto leave = [](const std::shared_ptr<ParallelForState>& s) {
    // Decrement under the mutex: a bare atomic store could slip between the
    // caller's predicate check and its sleep, losing the wakeup.
    {
      std::lock_guard<std::mutex> lock(s->mutex);
      s->active_helpers.fetch_sub(1);
    }
    s->done_cv.notify_all();
  };
  for (int h = 0; h < parallelism - 1; ++h) {
    enqueue([state, leave] {
      state->active_helpers.fetch_add(1);
      if (state->closed.load()) {
        // The caller already drained every chunk and may have returned;
        // fn is gone, so leave without touching the counter-protected work.
        leave(state);
        return;
      }
      state->run_chunks();
      leave(state);
    });
  }

  state->run_chunks();
  state->closed.store(true);
  {
    std::unique_lock<std::mutex> lock(state->mutex);
    state->done_cv.wait(lock,
                        [&] { return state->active_helpers.load() == 0; });
    if (state->error) std::rethrow_exception(state->error);
  }
}

void ThreadPool::parallel_for_seeded(
    std::int64_t begin, std::int64_t end, int max_parallelism,
    std::uint64_t seed, FunctionRef<void(std::int64_t, Rng&)> fn) {
  parallel_for(begin, end, max_parallelism, [&fn, seed](std::int64_t i) {
    Rng rng(hash_combine64(seed, static_cast<std::uint64_t>(i)));
    fn(i, rng);
  });
}

}  // namespace irgnn::support
