// Heap-free callable wrappers for the hot path.
//
// std::function heap-allocates any capture bigger than its tiny inline
// buffer, which would put one malloc on every tape node (backward closures)
// and every thread-pool task. These two wrappers close that hole:
//
//   InlineFunction<Sig, N>  - owning, move-only, capture stored in N bytes
//                             inline; over-large captures fail to compile
//                             instead of silently allocating.
//   FunctionRef<Sig>        - non-owning view of a callable; safe whenever
//                             the callee returns before the callable dies
//                             (parallel_for blocks, so its body qualifies).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace irgnn::support {

template <typename Signature, std::size_t Capacity = 64>
class InlineFunction;

template <typename R, typename... Args, std::size_t Capacity>
class InlineFunction<R(Args...), Capacity> {
 public:
  InlineFunction() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction>>>
  InlineFunction(F&& fn) {  // NOLINT: implicit by design, mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "capture too large for InlineFunction storage");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "capture over-aligned for InlineFunction storage");
    ::new (storage_) Fn(std::forward<F>(fn));
    ops_ = &ops_for<Fn>;
  }

  InlineFunction(InlineFunction&& other) noexcept { move_from(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  R operator()(Args... args) const {
    return ops_->invoke(const_cast<unsigned char*>(storage_),
                        std::forward<Args>(args)...);
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    void (*relocate)(void* from, void* to);  // move-construct + destroy source
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr Ops ops_for = {
      [](void* f, Args&&... args) -> R {
        return (*static_cast<Fn*>(f))(std::forward<Args>(args)...);
      },
      [](void* from, void* to) {
        Fn* src = static_cast<Fn*>(from);
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* f) { static_cast<Fn*>(f)->~Fn(); }};

  void move_from(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[Capacity];
  const Ops* ops_ = nullptr;
};

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef>>>
  FunctionRef(F&& fn) noexcept  // NOLINT: implicit by design
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(fn)))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace irgnn::support
