// Fixed-size worker pool — the single parallelism substrate of the library.
//
// Every parallel layer (tensor kernels, minibatch gradient shards, CV folds,
// configuration exploration) funnels through ThreadPool::parallel_for, which
// has two properties the determinism contract depends on:
//
//  1. The caller participates: the submitting thread drains index chunks
//     alongside the workers, so nested parallel_for calls (a fold training a
//     model whose matmuls parallelize again) can never deadlock even when
//     every worker is busy — helper tasks that never get scheduled simply
//     find the chunk counter exhausted and exit.
//  2. Work is partitioned by *index*, never by thread: fn(i) must only write
//     state owned by index i, and any randomness must come from the seeded
//     variant (parallel_for_seeded derives a per-index Rng from the seed via
//     splitmix64). Under that contract results are bit-identical for every
//     max_parallelism, including 1.
//
// Reductions that would break property 2 (summing per-item floats) are the
// caller's job: accumulate into per-index slots and fold them in index order
// after parallel_for returns.
//
// The dispatch path is allocation-free in steady state: tasks are
// InlineFunction (captures live inside the queue slot, never on the heap),
// the queue's block storage recycles through the buffer arena, parallel_for
// borrows the caller's callable via FunctionRef instead of copying it into a
// std::function, and its shared state is pool-allocated. A warm train loop
// therefore schedules work without touching malloc.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/arena.h"
#include "support/inline_function.h"
#include "support/rng.h"

namespace irgnn::support {

class ThreadPool {
 public:
  /// Queued work item. 64 inline bytes cover every internal capture; the
  /// InlineFunction static_assert flags anything bigger at compile time.
  using Task = InlineFunction<void(), 64>;

  /// Spawns `num_workers` threads (0 is allowed: every submit/parallel_for
  /// then runs inline on the caller).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Process-wide pool, created on first use. Sized by the
  /// IRGNN_NUM_THREADS environment variable when set, otherwise
  /// max(hardware_concurrency, 8) so that explicit `num_threads` requests up
  /// to 8 are honoured even when hardware detection under-reports.
  static ThreadPool& global();

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown by
  /// `fn` surface from future::get(). A worker-less pool runs the task
  /// inline before returning (the future would otherwise never resolve).
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    if (workers_.empty())
      (*task)();
    else
      enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs fn(i) for every i in [begin, end). At most `max_parallelism`
  /// threads (caller included; <= 0 means all workers + caller) execute
  /// concurrently. Rethrows the exception of the lowest-indexed failing
  /// chunk after all started work drains. fn must treat distinct indices as
  /// independent (see the file comment for the determinism contract). The
  /// callable is borrowed, not copied: parallel_for returns only after every
  /// helper is done with it.
  void parallel_for(std::int64_t begin, std::int64_t end, int max_parallelism,
                    FunctionRef<void(std::int64_t)> fn);

  /// parallel_for with a per-index deterministic random stream: fn(i, rng)
  /// receives an Rng seeded from splitmix64-mixing (seed, i), so the stream
  /// an index observes never depends on which thread ran it.
  void parallel_for_seeded(std::int64_t begin, std::int64_t end,
                           int max_parallelism, std::uint64_t seed,
                           FunctionRef<void(std::int64_t, Rng&)> fn);

 private:
  void enqueue(Task task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<Task, PoolAllocator<Task>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace irgnn::support
