#include "support/failpoint.h"

#if defined(IRGNN_FAILPOINTS)

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "support/rng.h"

namespace irgnn::support::failpoints {
namespace detail {

struct SiteState {
  std::string name;

  // Fast path: one relaxed increment + one acquire load per pass. The hit
  // counter keeps counting even while disarmed so hits() reflects traffic,
  // but schedules (every-Nth, one-shot, Bernoulli index) are relative to
  // the counter value captured at configure() time.
  std::atomic<std::uint64_t> hits{0};
  std::atomic<bool> armed{false};

  // Slow path, only touched when armed (or by the registry API).
  std::mutex mu;
  FailpointSpec spec;
  std::uint64_t hits_at_configure = 0;  // schedule origin
  std::uint64_t fires = 0;
  std::uint64_t site_seed = 0;  // hash_combine64(global_seed, name hash)
};

}  // namespace detail

namespace {

using detail::SiteState;

// Leaky singleton: FailpointSite statics in library code resolve registry
// pointers that must outlive every server/router destructor, including ones
// running during static destruction. Never freed, by design.
struct Registry {
  std::mutex mu;
  std::uint64_t global_seed = 0;
  // std::map: node-stable, so SiteState* handed to FailpointSite never moves.
  std::map<std::string, SiteState, std::less<>> sites;
};

Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

std::uint64_t name_hash(std::string_view name) {
  // FNV-1a, then splitmix for avalanche; stable across runs and platforms.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return splitmix64(h);
}

SiteState& site_for(std::string_view name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(name);
  if (it == r.sites.end()) {
    it = r.sites.try_emplace(std::string(name)).first;
    it->second.name = it->first;
    std::uint64_t h = name_hash(name);
    it->second.site_seed = hash_combine64(r.global_seed, h);
  }
  return it->second;
}

}  // namespace

void set_seed(std::uint64_t seed) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.global_seed = seed;
  for (auto& [name, site] : r.sites) {
    std::lock_guard<std::mutex> site_lock(site.mu);
    site.site_seed = hash_combine64(seed, name_hash(name));
    site.hits.store(0, std::memory_order_relaxed);
    site.hits_at_configure = 0;
    site.fires = 0;
  }
}

void configure(std::string_view name, const FailpointSpec& spec) {
  SiteState& site = site_for(name);
  {
    std::lock_guard<std::mutex> lock(site.mu);
    site.spec = spec;
    site.hits_at_configure = site.hits.load(std::memory_order_relaxed);
    site.fires = 0;
  }
  site.armed.store(true, std::memory_order_release);
}

void disable(std::string_view name) {
  site_for(name).armed.store(false, std::memory_order_release);
}

void disable_all() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, site] : r.sites)
    site.armed.store(false, std::memory_order_release);
}

std::uint64_t hits(std::string_view name) {
  SiteState& site = site_for(name);
  std::lock_guard<std::mutex> lock(site.mu);
  return site.hits.load(std::memory_order_relaxed) - site.hits_at_configure;
}

std::uint64_t fires(std::string_view name) {
  SiteState& site = site_for(name);
  std::lock_guard<std::mutex> lock(site.mu);
  return site.fires;
}

namespace detail {

FailpointSite::FailpointSite(std::string_view name)
    : state_(&site_for(name)) {}

bool FailpointSite::should_fire(bool* run_error_action) {
  // Relaxed is enough: each hit only needs a unique index, not ordering
  // against other memory. fetch_add returns the pre-increment value; +1
  // makes hit numbers 1-based as documented.
  std::uint64_t raw_hit =
      state_->hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (!state_->armed.load(std::memory_order_acquire)) return false;

  FailpointSpec spec;
  std::uint64_t k;  // 1-based hit number within the current schedule
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (raw_hit <= state_->hits_at_configure) return false;  // stale hit
    spec = state_->spec;
    k = raw_hit - state_->hits_at_configure;
    if (spec.max_fires >= 0 &&
        state_->fires >= static_cast<std::uint64_t>(spec.max_fires))
      return false;

    bool fire;
    if (spec.one_shot_hit != 0) {
      fire = (k == spec.one_shot_hit);
    } else if (spec.every_nth != 0) {
      fire = (k % spec.every_nth == 0);
    } else if (spec.probability > 0.0) {
      if (spec.probability >= 1.0) {
        fire = true;
      } else {
        // Deterministic Bernoulli: the decision for hit k is a pure
        // function of (site_seed, k), independent of which thread got here.
        std::uint64_t s = hash_combine64(state_->site_seed, k);
        std::uint64_t draw = splitmix64(s);
        // threshold = probability * 2^64, computed without overflow.
        auto threshold = static_cast<std::uint64_t>(
            spec.probability * 18446744073709551616.0);
        fire = draw < threshold;
      }
    } else {
      fire = false;
    }
    if (!fire) return false;
    ++state_->fires;
  }

  // Latency injection happens outside the site lock so a slow failpoint
  // never serializes other hits (or the registry API) behind the sleep.
  if (spec.delay_us > 0)
    std::this_thread::sleep_for(std::chrono::microseconds(spec.delay_us));
  *run_error_action = spec.inject_error;
  return true;
}

}  // namespace detail
}  // namespace irgnn::support::failpoints

#endif  // IRGNN_FAILPOINTS
