// Aligned console tables and CSV output for the figure-reproduction benches.
//
// Every bench binary prints (a) a human-readable aligned table mirroring the
// rows/series of the corresponding paper figure and (b) optionally the same
// data as CSV for downstream plotting.
#pragma once

#include <string>
#include <vector>

namespace irgnn {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);

  /// Renders the table with aligned columns.
  std::string to_string() const;

  /// Renders as CSV (comma-separated, quotes around cells containing commas).
  std::string to_csv() const;

  /// Prints `to_string()` to stdout.
  void print() const;

  /// Writes CSV to the given path; returns false on I/O failure.
  bool write_csv(const std::string& path) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace irgnn
