// dce: classic worklist dead-code elimination. An instruction with no uses
// and no side effects is erased; erasure may make its operands dead in turn.
//
// dse: block-local dead-store elimination — a store is dead when the same
// pointer is overwritten later in the block with no intervening read or
// potential aliasing access.
#include <unordered_set>

#include "passes/pass.h"

namespace irgnn::passes {

namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

class Dce : public FunctionPass {
 public:
  std::string name() const override { return "dce"; }

  bool run_on_function(ir::Function& fn) override {
    bool changed = false;
    std::vector<Instruction*> worklist;
    for (BasicBlock* block : fn.blocks())
      for (Instruction* inst : block->instructions())
        if (inst->is_trivially_dead()) worklist.push_back(inst);

    std::unordered_set<Instruction*> queued(worklist.begin(), worklist.end());
    while (!worklist.empty()) {
      Instruction* inst = worklist.back();
      worklist.pop_back();
      queued.erase(inst);
      if (!inst->is_trivially_dead()) continue;
      // Erasing may make operands dead.
      std::vector<Value*> operands;
      for (unsigned i = 0; i < inst->num_operands(); ++i)
        operands.push_back(inst->operand(i));
      inst->drop_all_references();
      inst->parent()->erase(inst);
      changed = true;
      for (Value* op : operands) {
        if (!op || op->value_kind() != Value::Kind::Instruction) continue;
        auto* op_inst = static_cast<Instruction*>(op);
        if (op_inst->is_trivially_dead() && queued.insert(op_inst).second)
          worklist.push_back(op_inst);
      }
    }
    return changed;
  }
};

class Dse : public FunctionPass {
 public:
  std::string name() const override { return "dse"; }

  bool run_on_function(ir::Function& fn) override {
    bool changed = false;
    for (BasicBlock* block : fn.blocks()) {
      auto insts = block->instructions();
      for (std::size_t i = 0; i < insts.size(); ++i) {
        Instruction* store = insts[i];
        if (store->opcode() != Opcode::Store) continue;
        Value* pointer = store->operand(1);
        for (std::size_t j = i + 1; j < insts.size(); ++j) {
          Instruction* later = insts[j];
          if (later->opcode() == Opcode::Store &&
              later->operand(1) == pointer) {
            store->drop_all_references();
            block->erase(store);
            changed = true;
            break;
          }
          // Any read or unknown memory access may observe the old value;
          // the pointer analysis here is identity-only, so stop at every
          // load/call/atomic and at stores through other pointers (they
          // might alias).
          if (later->reads_memory() || later->opcode() == Opcode::Store)
            break;
        }
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_dce() { return std::make_unique<Dce>(); }
std::unique_ptr<Pass> make_dse() { return std::make_unique<Dse>(); }

}  // namespace irgnn::passes
