// Registration of all built-in passes.
#include "passes/pass.h"

namespace irgnn::passes {

std::unique_ptr<Pass> make_mem2reg();
std::unique_ptr<Pass> make_simplify_cfg();
std::unique_ptr<Pass> make_dce();
std::unique_ptr<Pass> make_dse();
std::unique_ptr<Pass> make_instcombine();
std::unique_ptr<Pass> make_earlycse();
std::unique_ptr<Pass> make_gvn();
std::unique_ptr<Pass> make_licm();
std::unique_ptr<Pass> make_loop_unroll();
std::unique_ptr<Pass> make_inline();

void register_builtin_passes() {
  PassRegistry& registry = PassRegistry::instance();
  registry.register_pass("mem2reg", make_mem2reg);
  registry.register_pass("simplifycfg", make_simplify_cfg);
  registry.register_pass("dce", make_dce);
  registry.register_pass("dse", make_dse);
  registry.register_pass("instcombine", make_instcombine);
  registry.register_pass("earlycse", make_earlycse);
  registry.register_pass("gvn", make_gvn);
  registry.register_pass("licm", make_licm);
  registry.register_pass("loop-unroll", make_loop_unroll);
  registry.register_pass("inline", make_inline);
}

}  // namespace irgnn::passes
