#include "passes/pass.h"

#include <cassert>
#include <stdexcept>

#include "ir/verifier.h"

namespace irgnn::passes {

PassRegistry& PassRegistry::instance() {
  static PassRegistry registry;
  return registry;
}

void PassRegistry::register_pass(
    const std::string& name, std::function<std::unique_ptr<Pass>()> factory) {
  for (auto& [existing, _] : factories_)
    if (existing == name) return;  // idempotent registration
  factories_.emplace_back(name, std::move(factory));
}

std::unique_ptr<Pass> PassRegistry::create(const std::string& name) const {
  for (const auto& [candidate, factory] : factories_)
    if (candidate == name) return factory();
  return nullptr;
}

bool PassRegistry::contains(const std::string& name) const {
  for (const auto& [candidate, _] : factories_)
    if (candidate == name) return true;
  return false;
}

std::vector<std::string> PassRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : factories_) out.push_back(name);
  return out;
}

PassManager::PassManager(const std::vector<std::string>& pass_names)
    : names_(pass_names) {
  register_builtin_passes();
  for (const auto& name : pass_names) {
    auto pass = PassRegistry::instance().create(name);
    if (!pass) throw std::invalid_argument("unknown pass: " + name);
    passes_.push_back(std::move(pass));
  }
}

std::size_t PassManager::run(ir::Module& module) {
  std::size_t changed = 0;
  for (auto& pass : passes_) {
    if (pass->run(module)) ++changed;
#ifndef NDEBUG
    std::string errors;
    if (!ir::verify(module, &errors)) {
      throw std::runtime_error("IR broken after pass '" + pass->name() +
                               "':\n" + errors);
    }
#endif
  }
  return changed;
}

std::vector<std::string> o3_pipeline() {
  return {
      "mem2reg",     "instcombine", "simplifycfg", "earlycse",  "inline",
      "mem2reg",     "instcombine", "simplifycfg", "gvn",       "licm",
      "loop-unroll", "instcombine", "earlycse",    "dse",       "gvn",
      "licm",        "dce",         "simplifycfg", "instcombine",
      "dce",         "simplifycfg",
  };
}

std::vector<std::string> default_pipeline() { return o3_pipeline(); }

}  // namespace irgnn::passes
