// licm: loop-invariant code motion. Pure computations whose operands are
// defined outside the loop (or already hoisted) move to the preheader.
// Loads are hoisted only when the loop body contains no store, call or
// atomic (identity-only alias model). A canonical preheader is created on
// demand (the loop-simplify part of the pass).
#include <algorithm>
#include <unordered_set>

#include "ir/dominators.h"
#include "ir/loop_info.h"
#include "passes/pass.h"

namespace irgnn::passes {

namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::Loop;
using ir::Opcode;
using ir::Value;

/// Ensures `loop` has a dedicated preheader block ending in an unconditional
/// branch to the header; returns it (creating and rewiring if necessary), or
/// nullptr if the header is the function entry (no out-of-loop edge).
BasicBlock* ensure_preheader(ir::Function& fn, Loop* loop) {
  if (BasicBlock* existing = loop->preheader()) return existing;
  BasicBlock* header = loop->header();
  std::vector<BasicBlock*> outside;
  for (BasicBlock* pred : header->predecessors())
    if (!loop->contains(pred)) outside.push_back(pred);
  if (outside.empty()) return nullptr;

  BasicBlock* pre = fn.add_block_after(outside[0], header->name() + ".pre");
  // Move header-phi incomings for outside predecessors into the preheader.
  for (Instruction* phi : header->phis()) {
    std::vector<std::pair<Value*, BasicBlock*>> moved;
    for (BasicBlock* pred : outside) {
      int idx = phi->phi_incoming_index(pred);
      if (idx < 0) continue;
      moved.emplace_back(phi->phi_incoming_value(idx), pred);
      phi->phi_remove_incoming(static_cast<unsigned>(idx));
    }
    if (moved.empty()) continue;
    bool all_same = std::all_of(
        moved.begin(), moved.end(),
        [&](const auto& p) { return p.first == moved[0].first; });
    Value* incoming_from_pre = nullptr;
    if (all_same && moved.size() == outside.size()) {
      incoming_from_pre = moved[0].first;
    } else {
      auto merged = std::make_unique<Instruction>(
          Opcode::Phi, phi->type(), std::vector<Value*>{},
          phi->name() + ".pre");
      Instruction* raw = pre->push_front(std::move(merged));
      for (auto& [value, pred] : moved) raw->phi_add_incoming(value, pred);
      incoming_from_pre = raw;
    }
    phi->phi_add_incoming(incoming_from_pre, pre);
  }
  // Terminate the preheader and retarget outside edges.
  auto br = std::make_unique<Instruction>(
      Opcode::Br, fn.parent()->types().void_ty(),
      std::vector<Value*>{header});
  pre->push_back(std::move(br));
  for (BasicBlock* pred : outside) {
    Instruction* term = pred->terminator();
    for (unsigned i = 0; i < term->num_operands(); ++i)
      if (term->operand(i) == header) term->set_operand(i, pre);
  }
  return pre;
}

class Licm : public FunctionPass {
 public:
  std::string name() const override { return "licm"; }

  bool run_on_function(ir::Function& fn) override {
    bool changed = false;
    ir::DominatorTree dt(fn);
    ir::LoopInfo li(fn, dt);
    for (Loop* loop : li.loops_innermost_first())
      changed |= hoist_from_loop(fn, loop);
    return changed;
  }

 private:
  bool hoist_from_loop(ir::Function& fn, Loop* loop) {
    BasicBlock* pre = ensure_preheader(fn, loop);
    if (!pre) return false;

    bool loop_writes_memory = false;
    for (BasicBlock* block : loop->blocks()) {
      for (Instruction* inst : block->instructions()) {
        if (inst->opcode() == Opcode::Store ||
            inst->opcode() == Opcode::AtomicRMW ||
            (inst->opcode() == Opcode::Call && inst->has_side_effects()))
          loop_writes_memory = true;
      }
    }

    std::unordered_set<Value*> hoisted;
    auto is_invariant_operand = [&](Value* v) {
      if (hoisted.count(v)) return true;
      if (v->value_kind() != Value::Kind::Instruction) return true;
      return !loop->contains(static_cast<Instruction*>(v)->parent());
    };

    bool changed = false;
    bool progress = true;
    while (progress) {
      progress = false;
      for (BasicBlock* block : loop->blocks()) {
        for (Instruction* inst : block->instructions()) {
          if (inst->is_terminator() || inst->has_side_effects()) continue;
          if (inst->opcode() == Opcode::Phi ||
              inst->opcode() == Opcode::Alloca)
            continue;
          if (inst->opcode() == Opcode::Load && loop_writes_memory) continue;
          if (inst->opcode() == Opcode::Call) continue;  // only pure ops
          if (hoisted.count(inst)) continue;
          bool invariant = true;
          for (unsigned i = 0; i < inst->num_operands(); ++i)
            invariant &= is_invariant_operand(inst->operand(i));
          if (!invariant) continue;
          // Move before the preheader terminator.
          auto owned = block->remove(inst);
          pre->insert_before(pre->terminator(), std::move(owned));
          hoisted.insert(inst);
          progress = true;
          changed = true;
        }
      }
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_licm() { return std::make_unique<Licm>(); }

}  // namespace irgnn::passes
