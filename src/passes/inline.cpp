// inline: bottom-up function inlining with a size budget. A call site is
// inlined when the callee has a body, is not (mutually) recursive at the
// site, and is small. The call block is split at the call; callee blocks are
// cloned into the caller; returns become branches to the continuation block
// with a phi merging return values.
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "passes/pass.h"

namespace irgnn::passes {

namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

constexpr std::size_t kMaxCalleeSize = 64;

class Inliner : public Pass {
 public:
  std::string name() const override { return "inline"; }

  bool run(ir::Module& module) override {
    bool changed = false;
    for (ir::Function* fn : module.functions()) {
      if (fn->is_declaration()) continue;
      bool progress = true;
      while (progress) {
        progress = false;
        for (BasicBlock* block : fn->blocks()) {
          for (Instruction* inst : block->instructions()) {
            if (inst->opcode() != Opcode::Call) continue;
            ir::Function* callee = inst->called_function();
            if (!callee || callee->is_declaration() || callee == fn)
              continue;
            if (callee->instruction_count() > kMaxCalleeSize) continue;
            if (is_recursive(callee)) continue;
            inline_call(*fn, inst, *callee);
            changed = true;
            progress = true;
            break;  // block structure changed; rescan the function
          }
          if (progress) break;
        }
      }
    }
    return changed;
  }

 private:
  static bool is_recursive(ir::Function* fn) {
    for (BasicBlock* block : fn->blocks())
      for (Instruction* inst : block->instructions())
        if (inst->opcode() == Opcode::Call &&
            inst->called_function() == fn)
          return true;
    return false;
  }

  void inline_call(ir::Function& caller, Instruction* call,
                   ir::Function& callee) {
    ir::Module* module = caller.parent();
    BasicBlock* call_block = call->parent();

    // Split: move everything after the call into a continuation block.
    BasicBlock* cont =
        caller.add_block_after(call_block, call_block->name() + ".cont");
    int call_idx = call_block->index_of(call);
    std::vector<Instruction*> tail;
    for (Instruction* inst : call_block->instructions()) {
      if (call_block->index_of(inst) > call_idx) tail.push_back(inst);
    }
    for (Instruction* inst : tail) cont->push_back(call_block->remove(inst));
    // Successor phis referenced call_block; they now live after cont.
    for (BasicBlock* succ : cont->successors())
      for (Instruction* phi : succ->phis()) {
        int idx = phi->phi_incoming_index(call_block);
        if (idx >= 0)
          phi->set_operand(static_cast<unsigned>(2 * idx + 1), cont);
      }

    // Clone callee blocks.
    std::unordered_map<Value*, Value*> vmap;
    for (unsigned i = 0; i < callee.num_args(); ++i)
      vmap[callee.arg(i)] = call->call_arg(i);
    std::vector<BasicBlock*> cloned;
    BasicBlock* insert_after = call_block;
    for (BasicBlock* block : callee.blocks()) {
      BasicBlock* nb = caller.add_block_after(
          insert_after, callee.name() + "." + block->name());
      insert_after = nb;
      vmap[block] = nb;
      cloned.push_back(nb);
    }
    std::vector<std::pair<Instruction*, Value*>> returns;  // (br-site, value)
    for (BasicBlock* block : callee.blocks()) {
      auto* nb = static_cast<BasicBlock*>(vmap.at(block));
      for (Instruction* inst : block->instructions()) {
        auto clone = std::make_unique<Instruction>(
            inst->opcode(), inst->type(), std::vector<Value*>{},
            inst->name());
        if (inst->opcode() == Opcode::ICmp)
          clone->set_icmp_pred(inst->icmp_pred());
        if (inst->opcode() == Opcode::FCmp)
          clone->set_fcmp_pred(inst->fcmp_pred());
        if (inst->opcode() == Opcode::Alloca)
          clone->set_allocated_type(inst->allocated_type());
        if (inst->opcode() == Opcode::AtomicRMW)
          clone->set_atomic_op(inst->atomic_op());
        vmap[inst] = nb->push_back(std::move(clone));
      }
    }
    for (BasicBlock* block : callee.blocks()) {
      for (Instruction* inst : block->instructions()) {
        auto* ni = static_cast<Instruction*>(vmap.at(inst));
        if (inst->opcode() == Opcode::Ret) {
          // Remember the site; a branch to the continuation replaces the
          // shell afterwards.
          Value* retval = inst->num_operands()
                              ? map_operand(inst->operand(0), vmap)
                              : nullptr;
          returns.emplace_back(ni, retval);
          continue;
        }
        for (unsigned i = 0; i < inst->num_operands(); ++i)
          ni->add_operand(map_operand(inst->operand(i), vmap));
      }
    }
    // Mutate return shells into branches, recording each return's home
    // block and value for the merge phi.
    std::vector<std::pair<BasicBlock*, Value*>> ret_edges;
    for (auto& [site, value] : returns) {
      BasicBlock* home = site->parent();
      auto br = std::make_unique<Instruction>(
          Opcode::Br, module->types().void_ty(),
          std::vector<Value*>{cont});
      site->drop_all_references();
      home->erase(site);
      home->push_back(std::move(br));
      ret_edges.emplace_back(home, value);
    }

    // Merge return values at the continuation head.
    Value* result = nullptr;
    if (!call->type()->is_void()) {
      if (ret_edges.size() == 1) {
        result = ret_edges[0].second;
      } else {
        auto phi = std::make_unique<Instruction>(
            Opcode::Phi, call->type(), std::vector<Value*>{},
            call->name() + ".ret");
        Instruction* raw = cont->push_front(std::move(phi));
        for (auto& [home, value] : ret_edges)
          raw->phi_add_incoming(value, home);
        result = raw;
      }
    }

    // Rewire the call: branch into the inlined entry, replace uses.
    BasicBlock* inlined_entry = cloned.front();
    if (result) call->replace_all_uses_with(result);
    call->drop_all_references();
    call_block->erase(call);
    auto br = std::make_unique<Instruction>(
        Opcode::Br, module->types().void_ty(),
        std::vector<Value*>{inlined_entry});
    call_block->push_back(std::move(br));
  }

  static Value* map_operand(Value* op,
                            const std::unordered_map<Value*, Value*>& vmap) {
    auto it = vmap.find(op);
    return it != vmap.end() ? it->second : op;
  }
};

}  // namespace

std::unique_ptr<Pass> make_inline() { return std::make_unique<Inliner>(); }

}  // namespace irgnn::passes
