// mem2reg: promotes stack slots (allocas) whose address never escapes into
// SSA registers, inserting phi nodes at iterated dominance frontiers and
// renaming along the dominator tree. This is the standard SSA-construction
// algorithm; it is the first pass of every pipeline because the workload
// generators emit allocas for loop counters and scalars the way a frontend
// would.
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "ir/dominators.h"
#include "passes/pass.h"

namespace irgnn::passes {

namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

/// An alloca is promotable when it allocates a single first-class value and
/// is only ever used directly as the pointer of loads and stores.
bool is_promotable(const Instruction* alloca) {
  if (alloca->allocated_type()->is_array()) return false;
  if (!alloca->allocated_type()->is_first_class()) return false;
  auto* size = alloca->operand(0);
  if (size->value_kind() != Value::Kind::ConstantInt ||
      !static_cast<const ir::ConstantInt*>(size)->is_one())
    return false;
  for (const Value::Use& use : alloca->uses()) {
    switch (use.user->opcode()) {
      case Opcode::Load:
        break;
      case Opcode::Store:
        if (use.index != 1) return false;  // storing the address escapes it
        break;
      default:
        return false;
    }
  }
  return true;
}

class Mem2Reg : public FunctionPass {
 public:
  std::string name() const override { return "mem2reg"; }

  bool run_on_function(ir::Function& fn) override {
    std::vector<Instruction*> allocas;
    for (BasicBlock* block : fn.blocks())
      for (Instruction* inst : block->instructions())
        if (inst->opcode() == Opcode::Alloca && is_promotable(inst))
          allocas.push_back(inst);
    if (allocas.empty()) return false;

    ir::DominatorTree dt(fn);
    std::unordered_map<Instruction*, std::size_t> slot_of;
    for (std::size_t i = 0; i < allocas.size(); ++i) slot_of[allocas[i]] = i;

    // Phase 1: place phis at the iterated dominance frontier of each slot's
    // definition (store) blocks.
    phi_slot_.clear();
    for (std::size_t slot = 0; slot < allocas.size(); ++slot) {
      std::vector<BasicBlock*> work;
      std::unordered_set<BasicBlock*> def_blocks;
      for (const Value::Use& use : allocas[slot]->uses())
        if (use.user->opcode() == Opcode::Store)
          if (def_blocks.insert(use.user->parent()).second)
            work.push_back(use.user->parent());
      std::unordered_set<BasicBlock*> has_phi;
      while (!work.empty()) {
        BasicBlock* block = work.back();
        work.pop_back();
        for (BasicBlock* front : dt.frontier(block)) {
          if (!has_phi.insert(front).second) continue;
          auto phi = std::make_unique<Instruction>(
              Opcode::Phi, allocas[slot]->allocated_type(),
              std::vector<Value*>{},
              allocas[slot]->name() + ".phi");
          phi_slot_[front->push_front(std::move(phi))] = slot;
          if (!def_blocks.count(front)) work.push_back(front);
        }
      }
    }

    // Phase 2: rename along the dominator tree.
    stacks_.assign(allocas.size(), {});
    rename(fn.entry(), dt, slot_of);

    // Phase 3: drop the allocas (their direct uses are gone).
    for (Instruction* alloca : allocas) alloca->parent()->erase(alloca);
    return true;
  }

 private:
  Value* current_value(ir::Function& fn, std::size_t slot,
                       ir::Type* type) {
    if (!stacks_[slot].empty()) return stacks_[slot].back();
    // Load before any store: the value is undefined.
    return fn.parent()->get_undef(type);
  }

  void rename(BasicBlock* block, const ir::DominatorTree& dt,
              const std::unordered_map<Instruction*, std::size_t>& slot_of) {
    std::vector<std::size_t> pushed;

    for (Instruction* inst : block->instructions()) {
      auto phi_it = phi_slot_.find(inst);
      if (phi_it != phi_slot_.end()) {
        stacks_[phi_it->second].push_back(inst);
        pushed.push_back(phi_it->second);
        continue;
      }
      if (inst->opcode() == Opcode::Load) {
        auto* src = inst->operand(0);
        if (src->value_kind() != Value::Kind::Instruction) continue;
        auto slot_it = slot_of.find(static_cast<Instruction*>(src));
        if (slot_it == slot_of.end()) continue;
        // RAUW leaves the load unused, so it can be erased on the spot
        // (iteration is over a snapshot of the block's instructions).
        inst->replace_all_uses_with(current_value(
            *block->parent(), slot_it->second, inst->type()));
        inst->drop_all_references();
        block->erase(inst);
      } else if (inst->opcode() == Opcode::Store) {
        auto* dst = inst->operand(1);
        if (dst->value_kind() != Value::Kind::Instruction) continue;
        auto slot_it = slot_of.find(static_cast<Instruction*>(dst));
        if (slot_it == slot_of.end()) continue;
        stacks_[slot_it->second].push_back(inst->operand(0));
        pushed.push_back(slot_it->second);
        inst->drop_all_references();
        block->erase(inst);
      }
    }

    // Feed successor phis.
    for (BasicBlock* succ : block->successors()) {
      for (Instruction* phi : succ->phis()) {
        auto phi_it = phi_slot_.find(phi);
        if (phi_it == phi_slot_.end()) continue;
        phi->phi_add_incoming(
            current_value(*block->parent(), phi_it->second, phi->type()),
            block);
      }
    }

    for (BasicBlock* child : dt.children(block)) rename(child, dt, slot_of);

    for (auto it = pushed.rbegin(); it != pushed.rend(); ++it)
      stacks_[*it].pop_back();
  }

  std::unordered_map<Instruction*, std::size_t> phi_slot_;
  std::vector<std::vector<Value*>> stacks_;
};

}  // namespace

std::unique_ptr<Pass> make_mem2reg() { return std::make_unique<Mem2Reg>(); }

}  // namespace irgnn::passes
