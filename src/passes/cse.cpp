// earlycse: block-local common-subexpression elimination over pure
// instructions, plus load-after-load and load-after-store forwarding with an
// identity-only alias model (any intervening store/call/atomic kills memory
// facts).
//
// gvn: dominator-scoped value numbering — an instruction is replaced by an
// identical computation whose definition dominates it. Memory is not
// value-numbered here (earlycse handles the local cases).
#include <map>
#include <tuple>
#include <vector>

#include "ir/dominators.h"
#include "passes/pass.h"

namespace irgnn::passes {

namespace {

using ir::BasicBlock;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

/// Structural key identifying a pure computation.
struct ExprKey {
  Opcode opcode;
  std::vector<Value*> operands;
  int payload;  // predicate / atomic op, 0 otherwise
  ir::Type* type;

  bool operator<(const ExprKey& other) const {
    return std::tie(opcode, operands, payload, type) <
           std::tie(other.opcode, other.operands, other.payload, other.type);
  }
};

/// Pure, CSE-able instruction? (No memory, no control, no allocation.)
bool is_cseable(const Instruction* inst) {
  if (inst->is_terminator() || inst->has_side_effects()) return false;
  switch (inst->opcode()) {
    case Opcode::Phi:
    case Opcode::Alloca:
    case Opcode::Load:
    case Opcode::Call:
    case Opcode::AtomicRMW:
      return false;
    default:
      return true;
  }
}

ExprKey key_of(const Instruction* inst) {
  ExprKey key;
  key.opcode = inst->opcode();
  for (unsigned i = 0; i < inst->num_operands(); ++i)
    key.operands.push_back(inst->operand(i));
  // Commutative ops: order operands deterministically so a+b matches b+a.
  if (inst->is_commutative() && key.operands.size() == 2 &&
      key.operands[1] < key.operands[0])
    std::swap(key.operands[0], key.operands[1]);
  key.payload = 0;
  if (inst->opcode() == Opcode::ICmp)
    key.payload = static_cast<int>(inst->icmp_pred());
  if (inst->opcode() == Opcode::FCmp)
    key.payload = static_cast<int>(inst->fcmp_pred()) + 16;
  key.type = inst->type();
  return key;
}

class EarlyCse : public FunctionPass {
 public:
  std::string name() const override { return "earlycse"; }

  bool run_on_function(ir::Function& fn) override {
    bool changed = false;
    for (BasicBlock* block : fn.blocks()) {
      std::map<ExprKey, Instruction*> available;
      std::map<Value*, Value*> known_mem;  // pointer -> last known value
      for (Instruction* inst : block->instructions()) {
        if (inst->opcode() == Opcode::Store) {
          // Stores through *other* pointers may alias; identity-only model
          // keeps just the stored-through pointer's fact.
          known_mem.clear();
          known_mem[inst->operand(1)] = inst->operand(0);
          continue;
        }
        if (inst->opcode() == Opcode::Call ||
            inst->opcode() == Opcode::AtomicRMW) {
          if (inst->has_side_effects()) known_mem.clear();
          continue;
        }
        if (inst->opcode() == Opcode::Load) {
          auto it = known_mem.find(inst->operand(0));
          if (it != known_mem.end() && it->second->type() == inst->type()) {
            inst->replace_all_uses_with(it->second);
            inst->drop_all_references();
            block->erase(inst);
            changed = true;
          } else {
            known_mem[inst->operand(0)] = inst;
          }
          continue;
        }
        if (!is_cseable(inst)) continue;
        ExprKey key = key_of(inst);
        auto [it, inserted] = available.emplace(key, inst);
        if (!inserted) {
          inst->replace_all_uses_with(it->second);
          inst->drop_all_references();
          block->erase(inst);
          changed = true;
        }
      }
    }
    return changed;
  }
};

class Gvn : public FunctionPass {
 public:
  std::string name() const override { return "gvn"; }

  bool run_on_function(ir::Function& fn) override {
    ir::DominatorTree dt(fn);
    changed_ = false;
    std::map<ExprKey, Instruction*> scope;
    walk(fn.entry(), dt, scope);
    return changed_;
  }

 private:
  void walk(BasicBlock* block, const ir::DominatorTree& dt,
            std::map<ExprKey, Instruction*> scope) {  // by value: tree scoping
    for (Instruction* inst : block->instructions()) {
      if (!is_cseable(inst)) continue;
      ExprKey key = key_of(inst);
      auto [it, inserted] = scope.emplace(key, inst);
      if (!inserted) {
        inst->replace_all_uses_with(it->second);
        inst->drop_all_references();
        block->erase(inst);
        changed_ = true;
      }
    }
    for (BasicBlock* child : dt.children(block)) walk(child, dt, scope);
  }

  bool changed_ = false;
};

}  // namespace

std::unique_ptr<Pass> make_earlycse() { return std::make_unique<EarlyCse>(); }
std::unique_ptr<Pass> make_gvn() { return std::make_unique<Gvn>(); }

}  // namespace irgnn::passes
