// instcombine: worklist-driven peephole simplification —
//   * constant folding of integer/fp arithmetic, comparisons and selects,
//   * algebraic identities (x+0, x*1, x*0, x-x, x^x, ...),
//   * strength reduction (multiply/divide by power of two to shifts),
//   * canonicalization (constants to the RHS of commutative ops),
//   * reassociation of constant chains ((x+c1)+c2 -> x+(c1+c2)),
//   * cast and phi/select degeneracies.
//
// FP identities are applied in the LLVM "fast-math"-like regime the
// generated workloads are compiled under (no NaN/signed-zero preservation);
// this is documented behaviour of the pipeline, not an accident.
#include <cmath>
#include <cstdint>
#include <unordered_set>

#include "passes/pass.h"

namespace irgnn::passes {

namespace {

using ir::ConstantFP;
using ir::ConstantInt;
using ir::ICmpPred;
using ir::FCmpPred;
using ir::Instruction;
using ir::Opcode;
using ir::Type;
using ir::Value;

ConstantInt* as_int(Value* v) {
  return v->value_kind() == Value::Kind::ConstantInt
             ? static_cast<ConstantInt*>(v)
             : nullptr;
}
ConstantFP* as_fp(Value* v) {
  return v->value_kind() == Value::Kind::ConstantFP
             ? static_cast<ConstantFP*>(v)
             : nullptr;
}

/// Truncates `value` to the bit width of `type` (two's complement).
std::int64_t wrap_to_width(std::int64_t value, Type* type) {
  switch (type->int_bits()) {
    case 1: return value & 1;
    case 8: return static_cast<std::int8_t>(value);
    case 32: return static_cast<std::int32_t>(value);
    default: return value;
  }
}

bool is_power_of_two(std::int64_t v) { return v > 0 && (v & (v - 1)) == 0; }
int log2_int(std::int64_t v) {
  int k = 0;
  while ((std::int64_t{1} << k) < v) ++k;
  return k;
}

class InstCombine : public FunctionPass {
 public:
  std::string name() const override { return "instcombine"; }

  bool run_on_function(ir::Function& fn) override {
    module_ = fn.parent();
    bool any = false;
    bool changed = true;
    // Fixpoint over full scans: simple and robust; function bodies are small.
    while (changed) {
      changed = false;
      for (ir::BasicBlock* block : fn.blocks()) {
        for (Instruction* inst : block->instructions()) {
          Value* repl = simplify(inst);
          if (repl && repl != inst) {
            inst->replace_all_uses_with(repl);
            inst->drop_all_references();
            block->erase(inst);
            changed = true;
          } else if (canonicalize(inst)) {
            changed = true;
          }
        }
      }
      any |= changed;
    }
    return any;
  }

 private:
  /// Returns a replacement value if `inst` simplifies away, else nullptr.
  Value* simplify(Instruction* inst) {
    if (inst->is_terminator() || inst->has_side_effects()) return nullptr;
    switch (inst->opcode()) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::SDiv:
      case Opcode::SRem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::LShr:
      case Opcode::AShr:
        return simplify_int_binary(inst);
      case Opcode::FAdd:
      case Opcode::FSub:
      case Opcode::FMul:
      case Opcode::FDiv:
        return simplify_fp_binary(inst);
      case Opcode::ICmp:
        return simplify_icmp(inst);
      case Opcode::FCmp:
        return simplify_fcmp(inst);
      case Opcode::Select: {
        if (auto* c = as_int(inst->operand(0)))
          return c->value() ? inst->operand(1) : inst->operand(2);
        if (inst->operand(1) == inst->operand(2)) return inst->operand(1);
        return nullptr;
      }
      case Opcode::ZExt:
      case Opcode::SExt: {
        if (auto* c = as_int(inst->operand(0))) {
          std::int64_t v = c->value();
          if (inst->opcode() == Opcode::ZExt &&
              c->type()->kind() == Type::Kind::Int1)
            v &= 1;
          return module_->get_int(inst->type(), v);
        }
        return nullptr;
      }
      case Opcode::Trunc: {
        if (auto* c = as_int(inst->operand(0)))
          return module_->get_int(inst->type(),
                                  wrap_to_width(c->value(), inst->type()));
        return nullptr;
      }
      case Opcode::SIToFP: {
        if (auto* c = as_int(inst->operand(0)))
          return module_->get_fp(inst->type(),
                                 static_cast<double>(c->value()));
        return nullptr;
      }
      case Opcode::FPExt:
      case Opcode::FPTrunc: {
        if (auto* c = as_fp(inst->operand(0)))
          return module_->get_fp(inst->type(), c->value());
        return nullptr;
      }
      case Opcode::Bitcast:
        if (inst->operand(0)->type() == inst->type()) return inst->operand(0);
        return nullptr;
      default:
        return nullptr;
    }
  }

  Value* simplify_int_binary(Instruction* inst) {
    Value* lhs = inst->operand(0);
    Value* rhs = inst->operand(1);
    ConstantInt* cl = as_int(lhs);
    ConstantInt* cr = as_int(rhs);
    Type* type = inst->type();

    if (cl && cr) {
      std::int64_t a = cl->value();
      std::int64_t b = cr->value();
      std::int64_t result = 0;
      switch (inst->opcode()) {
        case Opcode::Add: result = a + b; break;
        case Opcode::Sub: result = a - b; break;
        case Opcode::Mul: result = a * b; break;
        case Opcode::SDiv:
          if (b == 0 || (a == INT64_MIN && b == -1)) return nullptr;
          result = a / b;
          break;
        case Opcode::SRem:
          if (b == 0 || (a == INT64_MIN && b == -1)) return nullptr;
          result = a % b;
          break;
        case Opcode::And: result = a & b; break;
        case Opcode::Or: result = a | b; break;
        case Opcode::Xor: result = a ^ b; break;
        case Opcode::Shl:
          if (b < 0 || b >= type->int_bits()) return nullptr;
          result = a << b;
          break;
        case Opcode::LShr:
          if (b < 0 || b >= type->int_bits()) return nullptr;
          result = static_cast<std::int64_t>(
              static_cast<std::uint64_t>(a) >> b);
          break;
        case Opcode::AShr:
          if (b < 0 || b >= type->int_bits()) return nullptr;
          result = a >> b;
          break;
        default: return nullptr;
      }
      return module_->get_int(type, wrap_to_width(result, type));
    }

    // Identities with a constant RHS (canonicalization puts constants there).
    if (cr) {
      std::int64_t b = cr->value();
      switch (inst->opcode()) {
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::Or:
        case Opcode::Xor:
        case Opcode::Shl:
        case Opcode::LShr:
        case Opcode::AShr:
          if (b == 0) return lhs;
          break;
        case Opcode::Mul:
          if (b == 0) return module_->get_int(type, 0);
          if (b == 1) return lhs;
          break;
        case Opcode::SDiv:
          if (b == 1) return lhs;
          break;
        case Opcode::SRem:
          if (b == 1) return module_->get_int(type, 0);
          break;
        case Opcode::And:
          if (b == 0) return module_->get_int(type, 0);
          break;
        default: break;
      }
    }
    // x - x, x ^ x -> 0; x & x, x | x -> x.
    if (lhs == rhs) {
      switch (inst->opcode()) {
        case Opcode::Sub:
        case Opcode::Xor:
        case Opcode::SRem:
          return module_->get_int(type, inst->opcode() == Opcode::SRem ? 0 : 0);
        case Opcode::And:
        case Opcode::Or:
          return lhs;
        case Opcode::SDiv:
          return module_->get_int(type, 1);
        default: break;
      }
    }
    return nullptr;
  }

  Value* simplify_fp_binary(Instruction* inst) {
    Value* lhs = inst->operand(0);
    Value* rhs = inst->operand(1);
    ConstantFP* cl = as_fp(lhs);
    ConstantFP* cr = as_fp(rhs);
    Type* type = inst->type();

    if (cl && cr) {
      double a = cl->value();
      double b = cr->value();
      double result = 0.0;
      switch (inst->opcode()) {
        case Opcode::FAdd: result = a + b; break;
        case Opcode::FSub: result = a - b; break;
        case Opcode::FMul: result = a * b; break;
        case Opcode::FDiv:
          if (b == 0.0) return nullptr;
          result = a / b;
          break;
        default: return nullptr;
      }
      if (!std::isfinite(result)) return nullptr;
      return module_->get_fp(type, result);
    }
    if (cr) {
      double b = cr->value();
      switch (inst->opcode()) {
        case Opcode::FAdd:
        case Opcode::FSub:
          if (b == 0.0) return lhs;
          break;
        case Opcode::FMul:
          if (b == 1.0) return lhs;
          if (b == 0.0) return module_->get_fp(type, 0.0);
          break;
        case Opcode::FDiv:
          if (b == 1.0) return lhs;
          break;
        default: break;
      }
    }
    return nullptr;
  }

  Value* simplify_icmp(Instruction* inst) {
    ConstantInt* cl = as_int(inst->operand(0));
    ConstantInt* cr = as_int(inst->operand(1));
    if (cl && cr) {
      std::int64_t a = cl->value();
      std::int64_t b = cr->value();
      bool result = false;
      switch (inst->icmp_pred()) {
        case ICmpPred::EQ: result = a == b; break;
        case ICmpPred::NE: result = a != b; break;
        case ICmpPred::SLT: result = a < b; break;
        case ICmpPred::SLE: result = a <= b; break;
        case ICmpPred::SGT: result = a > b; break;
        case ICmpPred::SGE: result = a >= b; break;
      }
      return module_->get_i1(result);
    }
    if (inst->operand(0) == inst->operand(1)) {
      switch (inst->icmp_pred()) {
        case ICmpPred::EQ:
        case ICmpPred::SLE:
        case ICmpPred::SGE:
          return module_->get_i1(true);
        default:
          return module_->get_i1(false);
      }
    }
    return nullptr;
  }

  Value* simplify_fcmp(Instruction* inst) {
    ConstantFP* cl = as_fp(inst->operand(0));
    ConstantFP* cr = as_fp(inst->operand(1));
    if (!cl || !cr) return nullptr;
    double a = cl->value();
    double b = cr->value();
    bool result = false;
    switch (inst->fcmp_pred()) {
      case FCmpPred::OEQ: result = a == b; break;
      case FCmpPred::ONE: result = a != b; break;
      case FCmpPred::OLT: result = a < b; break;
      case FCmpPred::OLE: result = a <= b; break;
      case FCmpPred::OGT: result = a > b; break;
      case FCmpPred::OGE: result = a >= b; break;
    }
    return module_->get_i1(result);
  }

  /// In-place rewrites that keep the instruction but change operands/opcode
  /// shape: commutative canonicalization, strength reduction, reassociation.
  bool canonicalize(Instruction* inst) {
    // Constant to the RHS of commutative ops.
    if (inst->is_commutative() && as_int(inst->operand(0)) &&
        !as_int(inst->operand(1))) {
      Value* l = inst->operand(0);
      Value* r = inst->operand(1);
      inst->set_operand(0, r);
      inst->set_operand(1, l);
      return true;
    }
    if ((inst->opcode() == Opcode::FAdd || inst->opcode() == Opcode::FMul) &&
        as_fp(inst->operand(0)) && !as_fp(inst->operand(1))) {
      Value* l = inst->operand(0);
      Value* r = inst->operand(1);
      inst->set_operand(0, r);
      inst->set_operand(1, l);
      return true;
    }
    // Strength reduction: mul by power of two -> shl.
    if (inst->opcode() == Opcode::Mul) {
      if (auto* c = as_int(inst->operand(1))) {
        if (is_power_of_two(c->value()) && c->value() > 1) {
          // Rebuild in place as a shift.
          Value* x = inst->operand(0);
          int k = log2_int(c->value());
          auto shl = std::make_unique<Instruction>(
              Opcode::Shl, inst->type(),
              std::vector<Value*>{x, module_->get_int(inst->type(), k)},
              inst->name());
          Instruction* raw =
              inst->parent()->insert_before(inst, std::move(shl));
          inst->replace_all_uses_with(raw);
          inst->drop_all_references();
          inst->parent()->erase(inst);
          return true;
        }
      }
    }
    // Reassociation: (x op c1) op c2 -> x op (c1 op c2) for add/mul/and/or.
    if ((inst->opcode() == Opcode::Add || inst->opcode() == Opcode::Mul ||
         inst->opcode() == Opcode::And || inst->opcode() == Opcode::Or)) {
      auto* c2 = as_int(inst->operand(1));
      if (c2 && inst->operand(0)->value_kind() == Value::Kind::Instruction) {
        auto* lhs = static_cast<Instruction*>(inst->operand(0));
        if (lhs->opcode() == inst->opcode()) {
          if (auto* c1 = as_int(lhs->operand(1))) {
            std::int64_t folded = 0;
            switch (inst->opcode()) {
              case Opcode::Add: folded = c1->value() + c2->value(); break;
              case Opcode::Mul: folded = c1->value() * c2->value(); break;
              case Opcode::And: folded = c1->value() & c2->value(); break;
              case Opcode::Or: folded = c1->value() | c2->value(); break;
              default: break;
            }
            inst->set_operand(0, lhs->operand(0));
            inst->set_operand(
                1, module_->get_int(inst->type(),
                                    wrap_to_width(folded, inst->type())));
            return true;
          }
        }
      }
    }
    return false;
  }

  ir::Module* module_ = nullptr;
};

}  // namespace

std::unique_ptr<Pass> make_instcombine() {
  return std::make_unique<InstCombine>();
}

}  // namespace irgnn::passes
