#include "passes/flag_sequence.h"

#include <sstream>

#include "passes/pass.h"
#include "support/rng.h"

namespace irgnn::passes {

std::string FlagSequence::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < passes.size(); ++i)
    os << (i ? " " : "") << "-" << passes[i];
  return os.str();
}

std::vector<FlagSequence> sample_flag_sequences(
    std::size_t count, std::uint64_t seed,
    const FlagSamplerOptions& options) {
  const std::vector<std::string> o3 = o3_pipeline();
  std::vector<FlagSequence> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t substream = hash_combine64(seed, i);
    Rng rng(substream);
    FlagSequence seq;
    seq.seed = substream;
    for (int round = 0; round < options.rounds; ++round)
      for (const std::string& pass : o3)
        if (rng.bernoulli(options.keep_probability))
          seq.passes.push_back(pass);
    out.push_back(std::move(seq));
  }
  return out;
}

}  // namespace irgnn::passes
