// simplifycfg: CFG cleanups run to fixpoint —
//   * removal of blocks unreachable from the entry,
//   * folding of constant conditional branches,
//   * merging of straight-line block pairs (unique succ / unique pred),
//   * forwarding of empty blocks that only jump onward,
//   * degenerate-phi elimination.
#include <algorithm>
#include <unordered_set>

#include "ir/cfg.h"
#include "passes/pass.h"

namespace irgnn::passes {

namespace {

using ir::BasicBlock;
using ir::ConstantInt;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

/// Removes `pred` from every phi of `block`.
void remove_phi_incoming_from(BasicBlock* block, BasicBlock* pred) {
  for (Instruction* phi : block->phis()) {
    int idx = phi->phi_incoming_index(pred);
    if (idx >= 0) phi->phi_remove_incoming(static_cast<unsigned>(idx));
  }
}

/// Replaces degenerate phis (single incoming, or all incoming equal).
bool simplify_phis(BasicBlock* block) {
  bool changed = false;
  for (Instruction* phi : block->phis()) {
    if (phi->phi_num_incoming() == 0) continue;
    Value* first = phi->phi_incoming_value(0);
    bool all_same = true;
    for (unsigned i = 1; i < phi->phi_num_incoming(); ++i) {
      Value* v = phi->phi_incoming_value(i);
      if (v != first && v != phi) {
        all_same = false;
        break;
      }
    }
    if (all_same && first != phi) {
      phi->replace_all_uses_with(first);
      phi->drop_all_references();
      block->erase(phi);
      changed = true;
    }
  }
  return changed;
}

class SimplifyCfg : public FunctionPass {
 public:
  std::string name() const override { return "simplifycfg"; }

  bool run_on_function(ir::Function& fn) override {
    bool any = false;
    bool changed = true;
    while (changed) {
      changed = false;
      changed |= fold_constant_branches(fn);
      changed |= remove_unreachable(fn);
      changed |= merge_straight_line(fn);
      changed |= forward_empty_blocks(fn);
      for (BasicBlock* block : fn.blocks()) changed |= simplify_phis(block);
      any |= changed;
    }
    return any;
  }

 private:
  bool fold_constant_branches(ir::Function& fn) {
    bool changed = false;
    for (BasicBlock* block : fn.blocks()) {
      Instruction* term = block->terminator();
      if (!term || !term->is_conditional_branch()) continue;
      auto* cond = term->branch_condition();
      BasicBlock* keep = nullptr;
      BasicBlock* drop = nullptr;
      if (cond->value_kind() == Value::Kind::ConstantInt) {
        bool taken = static_cast<ConstantInt*>(cond)->value() != 0;
        keep = term->successor(taken ? 0 : 1);
        drop = term->successor(taken ? 1 : 0);
      } else if (term->successor(0) == term->successor(1)) {
        keep = term->successor(0);
        drop = nullptr;
      } else {
        continue;
      }
      term->drop_all_references();
      block->erase(term);
      auto br = std::make_unique<Instruction>(
          Opcode::Br, fn.parent()->types().void_ty(),
          std::vector<Value*>{keep});
      block->push_back(std::move(br));
      if (drop && drop != keep) remove_phi_incoming_from(drop, block);
      if (!drop) {
        // Both edges pointed at `keep`; a phi may now carry a duplicate
        // incoming entry for `block`.
        for (Instruction* phi : keep->phis()) {
          int first = phi->phi_incoming_index(block);
          for (unsigned i = static_cast<unsigned>(first) + 1;
               i < phi->phi_num_incoming();) {
            if (phi->phi_incoming_block(i) == block)
              phi->phi_remove_incoming(i);
            else
              ++i;
          }
        }
      }
      changed = true;
    }
    return changed;
  }

  bool remove_unreachable(ir::Function& fn) {
    auto reachable = ir::reachable_blocks(fn);
    std::vector<BasicBlock*> dead;
    for (BasicBlock* block : fn.blocks())
      if (!reachable.count(block)) dead.push_back(block);
    if (dead.empty()) return false;
    // Detach phi edges from dead predecessors, then drop instruction
    // references so cross-block uses unlink, then erase.
    for (BasicBlock* block : dead)
      for (BasicBlock* succ : block->successors())
        if (reachable.count(succ)) remove_phi_incoming_from(succ, block);
    for (BasicBlock* block : dead)
      for (Instruction* inst : block->instructions()) {
        // Values in dead blocks may still be referenced by other dead
        // blocks' instructions; break those links wholesale.
        inst->replace_all_uses_with(
            fn.parent()->get_undef(inst->type()->is_void()
                                       ? fn.parent()->types().int32_ty()
                                       : inst->type()));
        inst->drop_all_references();
      }
    for (BasicBlock* block : dead) fn.erase_block(block);
    return true;
  }

  bool merge_straight_line(ir::Function& fn) {
    bool changed = false;
    // Merging erases the successor block, which may appear later in the
    // iteration snapshot; restart the scan after every merge.
  restart:
    for (BasicBlock* block : fn.blocks()) {
      Instruction* term = block->terminator();
      if (!term || term->num_successors() != 1) continue;
      BasicBlock* succ = term->successor(0);
      if (succ == block || succ == fn.entry()) continue;
      auto preds = succ->predecessors();
      if (preds.size() != 1) continue;
      // Fold phis (single incoming from `block`).
      for (Instruction* phi : succ->phis()) {
        phi->replace_all_uses_with(phi->phi_incoming_value(0));
        phi->drop_all_references();
        succ->erase(phi);
      }
      // Splice successor instructions into `block`.
      term->drop_all_references();
      block->erase(term);
      for (Instruction* inst : succ->instructions())
        block->push_back(succ->remove(inst));
      // The successor's targets may have phis referencing `succ`.
      succ->replace_all_uses_with(block);
      fn.erase_block(succ);
      changed = true;
      goto restart;
    }
    return changed;
  }

  bool forward_empty_blocks(ir::Function& fn) {
    bool changed = false;
    for (BasicBlock* block : fn.blocks()) {
      if (block == fn.entry() || block->size() != 1) continue;
      Instruction* term = block->terminator();
      if (!term || term->num_successors() != 1) continue;
      BasicBlock* target = term->successor(0);
      if (target == block) continue;
      // Forwarding is only safe when the target has no phis (otherwise the
      // incoming values per predecessor would need merging).
      if (!target->phis().empty()) continue;
      // Any predecessor that already branches to `target` elsewhere is fine
      // since target has no phis.
      term->drop_all_references();
      block->erase(term);
      block->replace_all_uses_with(target);
      fn.erase_block(block);
      changed = true;
    }
    return changed;
  }
};

}  // namespace

std::unique_ptr<Pass> make_simplify_cfg() {
  return std::make_unique<SimplifyCfg>();
}

}  // namespace irgnn::passes
