// loop-unroll: full unrolling of small, single-block counted loops.
//
// Pattern handled (the canonical rotated loop the builders and simplifycfg
// produce):
//
//   pre:    br body
//   body:   %i = phi [c0, pre], [%i.next, body]
//           ...
//           %i.next = add %i, step          (constant step)
//           %cond = icmp slt/sle/ne %i.next, %N   (constant bound)
//           br %cond, body, exit
//
// With trip count TC <= max_trip and body size <= max_body instructions the
// body is cloned TC times with the induction phi substituted per iteration,
// and external uses are rewired to the last iteration's values.
#include <unordered_map>
#include <vector>

#include "ir/dominators.h"
#include "ir/loop_info.h"
#include "passes/pass.h"

namespace irgnn::passes {

namespace {

using ir::BasicBlock;
using ir::ConstantInt;
using ir::ICmpPred;
using ir::Instruction;
using ir::Opcode;
using ir::Value;

constexpr std::int64_t kMaxTrip = 8;
constexpr std::size_t kMaxBody = 48;

struct CountedLoop {
  BasicBlock* body = nullptr;
  BasicBlock* exit = nullptr;
  std::vector<Instruction*> phis;       // all header phis
  std::vector<std::int64_t> init_i;     // constant int init per phi (if int)
  Instruction* cond = nullptr;
  std::int64_t trip_count = 0;
};

/// Computes the trip count of `icmp(next, bound)` driving the back edge,
/// where next = i + step each iteration starting from init. Returns 0 when
/// the pattern does not yield a positive, finite count.
std::int64_t trip_count_of(ICmpPred pred, std::int64_t init,
                           std::int64_t step, std::int64_t bound) {
  if (step == 0) return 0;
  std::int64_t n = 0;
  std::int64_t i = init;
  // Small bounds only; simulate (cheap and exact).
  for (n = 1; n <= kMaxTrip + 1; ++n) {
    std::int64_t next = i + step;
    bool continues = false;
    switch (pred) {
      case ICmpPred::SLT: continues = next < bound; break;
      case ICmpPred::SLE: continues = next <= bound; break;
      case ICmpPred::SGT: continues = next > bound; break;
      case ICmpPred::SGE: continues = next >= bound; break;
      case ICmpPred::NE: continues = next != bound; break;
      default: return 0;
    }
    if (!continues) return n;
    i = next;
  }
  return 0;  // too many iterations
}

class LoopUnroll : public FunctionPass {
 public:
  std::string name() const override { return "loop-unroll"; }

  bool run_on_function(ir::Function& fn) override {
    bool changed = false;
    // Re-analyze after each unroll (the CFG changed).
    bool progress = true;
    while (progress) {
      progress = false;
      ir::DominatorTree dt(fn);
      ir::LoopInfo li(fn, dt);
      for (ir::Loop* loop : li.loops_innermost_first()) {
        CountedLoop info;
        if (!match(loop, info)) continue;
        unroll(fn, info);
        changed = true;
        progress = true;
        break;  // loop structures are invalidated
      }
    }
    return changed;
  }

 private:
  bool match(ir::Loop* loop, CountedLoop& info) {
    BasicBlock* header = loop->header();
    if (loop->blocks().size() != 1) return false;  // single-block bodies only
    if (loop->latches().size() != 1 || loop->latches()[0] != header)
      return false;
    if (header->size() > kMaxBody) return false;

    Instruction* term = header->terminator();
    if (!term || !term->is_conditional_branch()) return false;
    BasicBlock* exit = nullptr;
    if (term->successor(0) == header)
      exit = term->successor(1);
    else if (term->successor(1) == header)
      exit = term->successor(0);
    else
      return false;
    if (term->successor(0) != header) return false;  // canonical: taken=body

    auto* cond = term->branch_condition();
    if (cond->value_kind() != Value::Kind::Instruction) return false;
    auto* cmp = static_cast<Instruction*>(cond);
    if (cmp->opcode() != Opcode::ICmp || cmp->parent() != header)
      return false;
    auto* bound = cmp->operand(1)->value_kind() == Value::Kind::ConstantInt
                      ? static_cast<ConstantInt*>(cmp->operand(1))
                      : nullptr;
    if (!bound) return false;

    // The compared value must be phi + constant step.
    if (cmp->operand(0)->value_kind() != Value::Kind::Instruction)
      return false;
    auto* next = static_cast<Instruction*>(cmp->operand(0));
    if (next->opcode() != Opcode::Add || next->parent() != header)
      return false;
    Instruction* ind_phi = nullptr;
    ConstantInt* step = nullptr;
    for (int side = 0; side < 2; ++side) {
      auto* a = next->operand(side);
      auto* b = next->operand(1 - side);
      if (a->value_kind() == Value::Kind::Instruction &&
          static_cast<Instruction*>(a)->opcode() == Opcode::Phi &&
          static_cast<Instruction*>(a)->parent() == header &&
          b->value_kind() == Value::Kind::ConstantInt) {
        ind_phi = static_cast<Instruction*>(a);
        step = static_cast<ConstantInt*>(b);
        break;
      }
    }
    if (!ind_phi || !step) return false;

    // All phis must have exactly two incomings: preheader-side and latch.
    for (Instruction* phi : header->phis()) {
      if (phi->phi_num_incoming() != 2) return false;
      if (phi->phi_incoming_index(header) < 0) return false;
    }

    // Induction start must be a constant.
    int pre_idx = 1 - ind_phi->phi_incoming_index(header);
    Value* init = ind_phi->phi_incoming_value(static_cast<unsigned>(
        1 - ind_phi->phi_incoming_index(header)));
    (void)pre_idx;
    if (init->value_kind() != Value::Kind::ConstantInt) return false;

    std::int64_t tc = trip_count_of(
        cmp->icmp_pred(), static_cast<ConstantInt*>(init)->value(),
        step->value(), bound->value());
    if (tc <= 1 || tc > kMaxTrip) return false;

    info.body = header;
    info.exit = exit;
    info.phis = header->phis();
    info.cond = cmp;
    info.trip_count = tc;
    return true;
  }

  void unroll(ir::Function& fn, const CountedLoop& info) {
    BasicBlock* body = info.body;
    ir::Module* module = fn.parent();

    // Current SSA value of each phi-carried variable.
    std::unordered_map<Instruction*, Value*> carried;
    for (Instruction* phi : info.phis) {
      unsigned latch_idx = static_cast<unsigned>(
          phi->phi_incoming_index(body));
      carried[phi] = phi->phi_incoming_value(1 - latch_idx);
    }

    std::vector<Instruction*> body_insts;
    for (Instruction* inst : body->instructions())
      if (inst->opcode() != Opcode::Phi && !inst->is_terminator())
        body_insts.push_back(inst);

    // Insertion point: before the terminator of `body`; clones stack up in
    // place and the original non-phi instructions are deleted afterwards.
    std::unordered_map<Value*, Value*> last_map;
    // Phi values observed by the final iteration (external phi uses see
    // these, not the post-advance values).
    std::unordered_map<Instruction*, Value*> final_phi_values;
    Instruction* term = body->terminator();
    for (std::int64_t iter = 0; iter < info.trip_count; ++iter) {
      if (iter == info.trip_count - 1) final_phi_values = carried;
      std::unordered_map<Value*, Value*> vmap;
      for (auto& [phi, value] : carried) vmap[phi] = value;
      for (Instruction* inst : body_insts) {
        auto clone = std::make_unique<Instruction>(
            inst->opcode(), inst->type(), std::vector<Value*>{},
            inst->name().empty()
                ? ""
                : inst->name() + ".it" + std::to_string(iter));
        if (inst->opcode() == Opcode::ICmp)
          clone->set_icmp_pred(inst->icmp_pred());
        if (inst->opcode() == Opcode::FCmp)
          clone->set_fcmp_pred(inst->fcmp_pred());
        if (inst->opcode() == Opcode::Alloca)
          clone->set_allocated_type(inst->allocated_type());
        if (inst->opcode() == Opcode::AtomicRMW)
          clone->set_atomic_op(inst->atomic_op());
        Instruction* raw = body->insert_before(term, std::move(clone));
        for (unsigned i = 0; i < inst->num_operands(); ++i) {
          Value* op = inst->operand(i);
          auto it = vmap.find(op);
          raw->add_operand(it != vmap.end() ? it->second : op);
        }
        vmap[inst] = raw;
      }
      // Advance carried values along the latch edge.
      std::unordered_map<Instruction*, Value*> next_carried;
      for (Instruction* phi : info.phis) {
        unsigned latch_idx = static_cast<unsigned>(
            phi->phi_incoming_index(body));
        Value* latch_value = phi->phi_incoming_value(latch_idx);
        auto it = vmap.find(latch_value);
        next_carried[phi] = it != vmap.end() ? it->second : latch_value;
      }
      carried = std::move(next_carried);
      last_map = std::move(vmap);
    }

    // Rewire external uses: values defined in the body used outside of it
    // (exit phis and dominated code) take their final-iteration clones;
    // header phis take the value observed by the final iteration.
    for (Instruction* inst : body_insts) {
      std::vector<Value::Use> snapshot = inst->uses();
      for (const Value::Use& use : snapshot)
        if (use.user->parent() != body)
          use.user->set_operand(use.index, last_map.at(inst));
    }
    for (Instruction* phi : info.phis) {
      std::vector<Value::Use> snapshot = phi->uses();
      for (const Value::Use& use : snapshot)
        if (use.user->parent() != body)
          use.user->set_operand(use.index, final_phi_values.at(phi));
    }

    // Replace the conditional terminator with a direct branch to the exit.
    term->drop_all_references();
    body->erase(term);
    auto br = std::make_unique<Instruction>(
        Opcode::Br, module->types().void_ty(),
        std::vector<Value*>{info.exit});
    body->push_back(std::move(br));

    // Delete the original (pre-clone) instructions and phis, in reverse
    // order so uses are gone before defs.
    for (auto it = body_insts.rbegin(); it != body_insts.rend(); ++it) {
      (*it)->replace_all_uses_with(module->get_undef(
          (*it)->type()->is_void() ? module->types().int32_ty()
                                   : (*it)->type()));
      (*it)->drop_all_references();
      body->erase(*it);
    }
    for (Instruction* phi : info.phis) {
      // Remaining uses can only be from instructions being deleted; they
      // have already dropped their references, so the phi is free.
      phi->replace_all_uses_with(module->get_undef(phi->type()));
      phi->drop_all_references();
      body->erase(phi);
    }
  }
};

}  // namespace

std::unique_ptr<Pass> make_loop_unroll() {
  return std::make_unique<LoopUnroll>();
}

}  // namespace irgnn::passes
