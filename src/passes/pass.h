// Pass framework: a registry of named transformations and a PassManager
// that runs sequences of them. Flag sequences (the paper's augmentation
// device) are just lists of registered pass names.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace irgnn::passes {

class Pass {
 public:
  virtual ~Pass() = default;
  virtual std::string name() const = 0;
  /// Runs on the module; returns true if anything changed.
  virtual bool run(ir::Module& module) = 0;
};

/// Adapter for passes that operate function-at-a-time (bodies only).
class FunctionPass : public Pass {
 public:
  bool run(ir::Module& module) override {
    bool changed = false;
    for (ir::Function* fn : module.functions())
      if (!fn->is_declaration()) changed |= run_on_function(*fn);
    return changed;
  }
  virtual bool run_on_function(ir::Function& fn) = 0;
};

/// Global registry mapping pass names to factories.
class PassRegistry {
 public:
  static PassRegistry& instance();

  void register_pass(const std::string& name,
                     std::function<std::unique_ptr<Pass>()> factory);
  std::unique_ptr<Pass> create(const std::string& name) const;
  bool contains(const std::string& name) const;
  std::vector<std::string> names() const;

 private:
  std::vector<std::pair<std::string, std::function<std::unique_ptr<Pass>()>>>
      factories_;
};

/// Runs a sequence of passes (by name) over a module.
class PassManager {
 public:
  /// Throws std::invalid_argument on an unknown pass name.
  explicit PassManager(const std::vector<std::string>& pass_names);

  /// Runs the whole sequence once, in order. Returns the number of passes
  /// that reported a change. In debug builds, verifies after every pass.
  std::size_t run(ir::Module& module);

  const std::vector<std::string>& pass_names() const { return names_; }

 private:
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<Pass>> passes_;
};

/// Registers all built-in passes (idempotent); called by PassManager and the
/// pipeline helpers.
void register_builtin_passes();

/// The default optimization pipeline (the "-O3 sequence" of the paper).
std::vector<std::string> o3_pipeline();

/// The default non-augmented compile ("-O2/O3 default flags" in the paper):
/// same as o3_pipeline().
std::vector<std::string> default_pipeline();

}  // namespace irgnn::passes
