// Flag-sequence generation — the paper's dataset-augmentation device.
//
// Following Section III-A (and Popov et al. [1]), random compilation
// sequences are produced by down-sampling the -O3 sequence: each pass of the
// pipeline is removed with probability 0.8, and the down-sampling round is
// repeated four times, concatenating the survivors. The goal is diversity of
// exposed code properties, not peak optimization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace irgnn::passes {

struct FlagSequence {
  std::vector<std::string> passes;
  std::uint64_t seed = 0;  // the substream that generated this sequence

  std::string to_string() const;
};

struct FlagSamplerOptions {
  double keep_probability = 0.2;  // pass survives a round with this p
  int rounds = 4;                 // down-sampling rounds, concatenated
};

/// Deterministically generates `count` flag sequences from `seed`.
/// Sequence i depends only on (seed, i), so subsets are stable when the
/// count changes. Empty sequences are kept (they model "no optimization" —
/// a legal and occasionally informative variant).
std::vector<FlagSequence> sample_flag_sequences(
    std::size_t count, std::uint64_t seed,
    const FlagSamplerOptions& options = {});

}  // namespace irgnn::passes
